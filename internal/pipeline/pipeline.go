// Package pipeline implements the trace-driven superscalar processor
// timing model behind the paper's ILP study (Figures 9 and 10).
//
// The model is a speculative out-of-order core in the Tomasulo-with-ROB
// style of the cycle-level simulators of the era: instructions are
// fetched in program order at up to IssueWidth per cycle (stalling on
// I-cache misses), renamed into a reorder buffer of ROBSize entries and
// a per-class reservation station pool of RSPerClass entries (memory
// operations additionally claim a load/store-queue slot of LSQSize),
// issue out of order once their source operands have broadcast on the
// common data bus, execute with class-specific latencies (loads pay the
// D-cache miss penalty and forward from older stores through the LSQ),
// and commit strictly in program order at up to IssueWidth per cycle.
// Branch direction comes from a Gshare unit with a BTB, matching the
// best predictor of Table 2; a misprediction squashes the speculative
// front end and re-fetches the corrected path MispredictPenalty cycles
// after the branch resolves on the CDB. Loads may issue speculatively
// past older stores with unresolved data (MemSpeculate) and replay when
// the disambiguation turns out wrong.
//
// Every scheduling rule is deliberately monotone: growing ROBSize,
// RSPerClass or LSQSize only relaxes constraints, so more resources can
// never increase the simulated cycle count on the same trace —
// FuzzPipelineConfig enforces this, along with determinism and the
// structural invariants checked by Checker.
package pipeline

import (
	"fmt"

	"jrs/internal/branch"
	"jrs/internal/cache"
	"jrs/internal/trace"
)

// Config parameterizes the core.
type Config struct {
	// IssueWidth is the fetch, dispatch and commit bandwidth per cycle
	// (1, 2, 4, 8 in the paper's sweep).
	IssueWidth int
	// WindowSize is the reorder-window capacity of the Legacy
	// approximation (unused by the Tomasulo core).
	WindowSize int
	// ROBSize is the reorder-buffer capacity: the number of
	// instructions that may be in flight between dispatch and in-order
	// commit.
	ROBSize int
	// RSPerClass is the reservation-station count per functional-unit
	// class (integer+control, floating point, memory). A station is
	// held from dispatch until the instruction issues.
	RSPerClass int
	// LSQSize is the load/store-queue capacity; every memory operation
	// holds an entry from dispatch until it commits.
	LSQSize int
	// MemSpeculate lets loads issue past older same-word stores whose
	// data is not yet ready (memory-dependence speculation); a
	// misspeculated load replays off the forwarded store data. When
	// false, disambiguation is conservative: such loads wait to issue.
	MemSpeculate bool
	// MispredictPenalty is the fetch-redirect latency after a
	// mispredicted control transfer resolves on the CDB: the corrected
	// path is re-fetched this many cycles after resolution.
	MispredictPenalty uint64
	// MissPenalty is the L1 miss penalty in cycles (applied to both
	// instruction fetch stalls and load latency).
	MissPenalty uint64
	// IntLatency, FPLatency, LoadLatency are hit execution latencies.
	IntLatency, FPLatency, LoadLatency uint64
	// ForwardLatency is the store-to-load forwarding delay through the
	// LSQ (a dependent load sees the stored value this many cycles
	// after the store completes).
	ForwardLatency uint64
	// TargetCache swaps the front end's BTB for the two-level indirect
	// target predictor (the paper's §4.4 "architectural support"
	// hypothesis for interpreter scaling).
	TargetCache bool
	// ICache and DCache configure the core's own L1 caches.
	ICache, DCache cache.Config
}

// DefaultConfig returns the configuration used by the Figure 9/10
// reproduction at the given issue width: 64-entry ROB (matching the old
// model's 64-entry window), 16 reservation stations per class, 32-entry
// LSQ with memory-dependence speculation, 64KB L1s as in the cache
// study, 20-cycle miss penalty, 5-cycle mispredict redirect.
func DefaultConfig(width int) Config {
	return Config{
		IssueWidth:        width,
		WindowSize:        64,
		ROBSize:           64,
		RSPerClass:        16,
		LSQSize:           32,
		MemSpeculate:      true,
		MispredictPenalty: 5,
		MissPenalty:       20,
		IntLatency:        1,
		FPLatency:         3,
		LoadLatency:       2,
		ForwardLatency:    3,
		ICache:            cache.Config{Name: "I", Size: 64 << 10, LineSize: 32, Assoc: 2, WriteAllocate: true},
		DCache:            cache.Config{Name: "D", Size: 64 << 10, LineSize: 32, Assoc: 4, WriteAllocate: true},
	}
}

// predictor abstracts the front-end prediction unit.
type predictor interface {
	Observe(trace.Inst) bool
}

// rsClass partitions instructions over the reservation-station pools.
type rsClass int

const (
	// rsInt covers integer ALU work and control transfers.
	rsInt rsClass = iota
	// rsFP covers floating-point work.
	rsFP
	// rsMem covers loads and stores.
	rsMem
	numRSClasses
)

// rsClassOf maps an instruction class to its reservation-station pool.
func rsClassOf(cl trace.Class) rsClass {
	switch cl {
	case trace.FPU:
		return rsFP
	case trace.Load, trace.Store:
		return rsMem
	}
	return rsInt
}

// cycleRing is a FIFO of event cycles used for the ROB and LSQ: entries
// are pushed at commit-time order and popped oldest-first, which is
// exact because commit is in program order.
type cycleRing struct {
	buf   []uint64
	head  int
	count int
}

func newCycleRing(n int) cycleRing { return cycleRing{buf: make([]uint64, n)} }

func (r *cycleRing) full() bool { return r.count == len(r.buf) }

func (r *cycleRing) popFront() uint64 {
	v := r.buf[r.head]
	r.head++
	if r.head == len(r.buf) {
		r.head = 0
	}
	r.count--
	return v
}

func (r *cycleRing) push(v uint64) {
	i := r.head + r.count
	if i >= len(r.buf) {
		i -= len(r.buf)
	}
	r.buf[i] = v
	r.count++
}

// Core is the timing model. It implements trace.Sink; feed it a
// program's native trace and read IPC afterwards.
type Core struct {
	cfg  Config
	ic   *cache.Cache
	dc   *cache.Cache
	pred predictor

	// regReady[r] is the CDB broadcast cycle of register r's latest
	// producer (indexable by any register byte incl. RegNone, which is
	// never written).
	regReady [256]uint64

	// fetchCycle is the cycle the next instruction can be fetched;
	// fetchedThisCycle counts instructions fetched at that cycle.
	fetchCycle       uint64
	fetchedThisCycle int

	// dispatchCycle / dispatchedThisCycle enforce in-order rename at
	// IssueWidth per cycle.
	dispatchCycle       uint64
	dispatchedThisCycle int

	// rob holds the commit cycles of in-flight instructions in program
	// order; a full ROB stalls dispatch until the oldest entry commits.
	rob cycleRing
	// lsq does the same for in-flight memory operations.
	lsq cycleRing

	// rs[class] holds the issue cycles of the stations' current
	// occupants; a full pool stalls dispatch until the occupant with
	// the earliest issue vacates.
	rs [numRSClasses][]uint64

	// memReady records, per 8-byte word, the cycle the last store to it
	// completes; loads from the word forward from it (and replay off it
	// when they speculated past it). This carries the true memory
	// dependences — loop variables the JIT keeps in frame slots, the
	// interpreter's operand stack — without which the model overstates
	// ILP badly. It is an open-addressing table rather than a Go map:
	// one probe per load/store is the model's hottest lookup.
	memReady wordCycleTable

	// commit-stage bookkeeping: in-order, IssueWidth per cycle.
	lastCommitCycle uint64
	commitsThisCycle int

	// check, when non-nil, receives every instruction's lifecycle for
	// independent invariant validation. Hot runs leave it nil, reducing
	// the hook to one predictable branch per instruction.
	check *Checker

	// Instrs counts committed instructions; LastCycle the final commit.
	Instrs    uint64
	LastCycle uint64
	// Mispredicts counts squash-and-refetch recoveries; SquashCycles
	// the total front-end cycles discarded by them.
	Mispredicts  uint64
	SquashCycles uint64
	// MemForwards counts loads bound by store-to-load forwarding;
	// MemReplays the subset that issued before the store's data was
	// ready and had to replay (only possible under MemSpeculate).
	MemForwards uint64
	MemReplays  uint64
}

// New builds a core.
func New(cfg Config) *Core {
	if cfg.IssueWidth < 1 || cfg.ROBSize < 1 || cfg.RSPerClass < 1 || cfg.LSQSize < 1 {
		panic(fmt.Sprintf("pipeline: invalid config (width=%d rob=%d rs=%d lsq=%d)",
			cfg.IssueWidth, cfg.ROBSize, cfg.RSPerClass, cfg.LSQSize))
	}
	var pred predictor = branch.NewUnit(branch.NewGshare(2048, 5), 1024)
	if cfg.TargetCache {
		pred = branch.NewIndirectUnit()
	}
	c := &Core{
		cfg:  cfg,
		ic:   cache.New(cfg.ICache),
		dc:   cache.New(cfg.DCache),
		pred: pred,
		rob:  newCycleRing(cfg.ROBSize),
		lsq:  newCycleRing(cfg.LSQSize),
	}
	for i := range c.rs {
		c.rs[i] = make([]uint64, 0, cfg.RSPerClass)
	}
	c.memReady.init()
	return c
}

// Check attaches (and returns) an invariant checker that independently
// re-validates every instruction's lifecycle. Intended for tests and
// debug runs; the default nil hook keeps the hot path free of it.
func (c *Core) Check() *Checker {
	c.check = NewChecker(c.cfg)
	return c.check
}

// Config returns the core's configuration.
func (c *Core) Config() Config { return c.cfg }

// IPC returns committed instructions per cycle.
func (c *Core) IPC() float64 {
	if c.LastCycle == 0 {
		return 0
	}
	return float64(c.Instrs) / float64(c.LastCycle)
}

// Cycles returns the total simulated cycles.
func (c *Core) Cycles() uint64 { return c.LastCycle }

func maxU64(a, b uint64) uint64 {
	if a > b {
		return a
	}
	return b
}

// EmitBatch implements trace.BatchSink: the front end consumes whole
// fetch batches through one dispatch, timing each instruction in place
// (no per-instruction 40-byte Inst copy) with a direct call into the
// core.
func (c *Core) EmitBatch(batch []trace.Inst) {
	for i := range batch {
		c.step(&batch[i])
	}
}

// Emit implements trace.Sink, timing one instruction.
func (c *Core) Emit(in trace.Inst) { c.step(&in) }

// step times one instruction through fetch → dispatch/rename → issue →
// execute/CDB broadcast → in-order commit.
func (c *Core) step(in *trace.Inst) {
	cfg := &c.cfg

	// ---- Fetch: in order, IssueWidth per cycle, I-cache stalls. ----
	if c.fetchedThisCycle >= cfg.IssueWidth {
		c.fetchCycle++
		c.fetchedThisCycle = 0
	}
	if !c.ic.Access(in.PC, false) {
		c.fetchCycle += cfg.MissPenalty
		c.fetchedThisCycle = 0
	}
	fetchAt := c.fetchCycle
	c.fetchedThisCycle++

	// ---- Dispatch/rename: in order, IssueWidth per cycle, stalling
	// on a full ROB, LSQ, or reservation-station pool. ----
	dispatchAt := fetchAt + 1
	if dispatchAt < c.dispatchCycle {
		dispatchAt = c.dispatchCycle
	}
	if c.rob.full() {
		// The oldest in-flight instruction commits first; its entry is
		// reusable the cycle after.
		if free := c.rob.popFront() + 1; free > dispatchAt {
			dispatchAt = free
		}
	}
	isMem := in.Class == trace.Load || in.Class == trace.Store
	if isMem && c.lsq.full() {
		if free := c.lsq.popFront() + 1; free > dispatchAt {
			dispatchAt = free
		}
	}
	cl := rsClassOf(in.Class)
	if slots := c.rs[cl]; len(slots) == cfg.RSPerClass {
		// The station vacating earliest belongs to the occupant with
		// the earliest issue; it is reusable the cycle it issues.
		minI := 0
		for i, v := range slots {
			if v < slots[minI] {
				minI = i
			}
		}
		if slots[minI] > dispatchAt {
			dispatchAt = slots[minI]
		}
		slots[minI] = slots[len(slots)-1]
		c.rs[cl] = slots[:len(slots)-1]
	}
	// Rename bandwidth: at most IssueWidth dispatches per cycle.
	if dispatchAt > c.dispatchCycle {
		c.dispatchCycle = dispatchAt
		c.dispatchedThisCycle = 1
	} else {
		c.dispatchedThisCycle++
		if c.dispatchedThisCycle > cfg.IssueWidth {
			c.dispatchCycle++
			dispatchAt = c.dispatchCycle
			c.dispatchedThisCycle = 1
		}
	}

	// ---- Issue: wait in the station until both sources have
	// broadcast on the CDB. ----
	ready := dispatchAt
	if in.Src1 != trace.RegNone {
		ready = maxU64(ready, c.regReady[in.Src1])
	}
	if in.Src2 != trace.RegNone {
		ready = maxU64(ready, c.regReady[in.Src2])
	}
	word := in.Addr >> 3
	var fwdCycle uint64
	var fwdPending bool
	if in.Class == trace.Load {
		if sr, ok := c.memReady.get(word); ok {
			fwdCycle, fwdPending = sr, true
			if !cfg.MemSpeculate && sr > ready {
				// Conservative disambiguation: the load may not issue
				// until the last store to its word has its data.
				ready = sr
			}
		}
	}
	issueAt := ready
	c.rs[cl] = append(c.rs[cl], issueAt)

	// ---- Execute; result broadcasts on the CDB at completion. ----
	var complete uint64
	fwdBound := false
	switch in.Class {
	case trace.FPU:
		complete = issueAt + cfg.FPLatency
	case trace.Load:
		lat := cfg.LoadLatency
		if !c.dc.Access(in.Addr, false) {
			lat += cfg.MissPenalty
		}
		complete = issueAt + lat
		// Store-to-load forwarding through the LSQ: the value is not
		// available before the producing store completes. A load that
		// speculated past the store (issued before the store's data
		// was ready) replays off the forwarded value at the same
		// point, so speculation never deepens the penalty — it only
		// reveals how often the disambiguator guessed wrong.
		if fwdPending && fwdCycle+cfg.ForwardLatency > complete {
			complete = fwdCycle + cfg.ForwardLatency
			fwdBound = true
			if cfg.MemSpeculate && fwdCycle > issueAt {
				c.MemReplays++
			} else {
				c.MemForwards++
			}
		}
	case trace.Store:
		lat := uint64(1)
		// A write-allocate store miss must fetch the line; the era's
		// shallow write buffers expose that latency to dependants
		// (this is what makes JIT code installation expensive, §6).
		if !c.dc.Access(in.Addr, true) {
			lat += cfg.MissPenalty
		}
		complete = issueAt + lat
		c.memReady.put(word, complete)
	default:
		complete = issueAt + cfg.IntLatency
	}

	if in.Dst != trace.RegNone {
		c.regReady[in.Dst] = complete
	}

	// ---- Control transfers: a misprediction squashes everything the
	// front end fetched down the wrong path and re-fetches the
	// corrected path MispredictPenalty cycles after the branch
	// resolves on the CDB. (The wrong-path instructions themselves are
	// not in the committed trace; the discarded front-end cycles are
	// accounted in SquashCycles.) ----
	if in.Class.IsControl() {
		if c.pred.Observe(*in) {
			c.Mispredicts++
			resume := complete + cfg.MispredictPenalty
			if resume > c.fetchCycle {
				c.SquashCycles += resume - c.fetchCycle
				c.fetchCycle = resume
				c.fetchedThisCycle = 0
			}
		}
	}

	// ---- Commit: strictly in program order, IssueWidth per cycle,
	// the cycle after the result broadcasts at the earliest. ----
	commitAt := complete + 1
	if commitAt < c.lastCommitCycle {
		commitAt = c.lastCommitCycle
	}
	if commitAt > c.lastCommitCycle {
		c.lastCommitCycle = commitAt
		c.commitsThisCycle = 1
	} else {
		c.commitsThisCycle++
		if c.commitsThisCycle > cfg.IssueWidth {
			c.lastCommitCycle++
			commitAt = c.lastCommitCycle
			c.commitsThisCycle = 1
		}
	}
	c.rob.push(commitAt)
	if isMem {
		c.lsq.push(commitAt)
	}

	if c.check != nil {
		c.check.Record(Event{
			Seq:      c.Instrs,
			Class:    in.Class,
			Word:     word,
			Src1:     in.Src1,
			Src2:     in.Src2,
			Dst:      in.Dst,
			Fetch:    fetchAt,
			Dispatch: dispatchAt,
			Issue:    issueAt,
			Complete: complete,
			Commit:   commitAt,
			FwdUsed:  fwdBound,
			FwdFrom:  fwdCycle,
		})
	}

	c.Instrs++
	c.LastCycle = commitAt
}
