package classfile

import (
	"bytes"
	"encoding/binary"
	"testing"

	"jrs/internal/minijava"
)

// FuzzRead throws arbitrary bytes at the classfile reader. Malformed
// input must be rejected with an error (no panic, no runaway
// allocation); any input the reader accepts must serialize back, and
// that serialization must be a stable fixed point: Read(Bytes(x))
// re-serializes to the identical bytes.
func FuzzRead(f *testing.F) {
	classes, err := minijava.Compile("p.mj", `
class Main {
	static void main() { Sys.printi(6 * 7); }
}`)
	if err != nil {
		f.Fatal(err)
	}
	valid, err := Bytes(classes)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(valid)
	f.Add(valid[:len(valid)/2])
	f.Add([]byte{})
	header := make([]byte, 12)
	binary.LittleEndian.PutUint32(header[0:], Magic)
	binary.LittleEndian.PutUint32(header[4:], Version)
	binary.LittleEndian.PutUint32(header[8:], 1)
	f.Add(header)

	f.Fuzz(func(t *testing.T, data []byte) {
		parsed, err := Read(bytes.NewReader(data))
		if err != nil {
			return
		}
		out, err := Bytes(parsed)
		if err != nil {
			t.Fatalf("accepted input does not serialize: %v", err)
		}
		back, err := Read(bytes.NewReader(out))
		if err != nil {
			t.Fatalf("own output does not re-parse: %v", err)
		}
		out2, err := Bytes(back)
		if err != nil {
			t.Fatalf("re-parse does not serialize: %v", err)
		}
		// Compare serialized forms, not structures: NaN pool floats are
		// preserved bit-exactly but are not reflect-equal.
		if !bytes.Equal(out, out2) {
			t.Fatalf("serialization is not a fixed point:\nfirst:  %x\nsecond: %x", out, out2)
		}
	})
}
