// Package classfile serializes compiled classes to a compact binary
// format — the repository's analogue of .class files — so MiniJava
// programs can be compiled once with cmd/mjc and executed later with
// cmd/jrun. The format is versioned and self-describing enough for
// round-trip fidelity of everything the loader needs: fields, statics,
// method bodies, flags and the symbolic constant pool.
package classfile

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"strings"

	"jrs/internal/bytecode"
)

// Magic identifies the file format ("JRSC" little-endian).
const Magic = 0x4353524A

// Version is the current format version.
const Version = 2

type writer struct {
	w   *bufio.Writer
	err error
}

func (w *writer) u8(v uint8) {
	if w.err == nil {
		w.err = w.w.WriteByte(v)
	}
}

func (w *writer) u32(v uint32) {
	var b [4]byte
	binary.LittleEndian.PutUint32(b[:], v)
	if w.err == nil {
		_, w.err = w.w.Write(b[:])
	}
}

func (w *writer) u64(v uint64) {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], v)
	if w.err == nil {
		_, w.err = w.w.Write(b[:])
	}
}

func (w *writer) str(s string) {
	w.u32(uint32(len(s)))
	if w.err == nil {
		_, w.err = w.w.WriteString(s)
	}
}

type reader struct {
	r   *bufio.Reader
	err error
}

func (r *reader) u8() uint8 {
	if r.err != nil {
		return 0
	}
	b, err := r.r.ReadByte()
	r.err = err
	return b
}

func (r *reader) u32() uint32 {
	var b [4]byte
	if r.err != nil {
		return 0
	}
	_, r.err = io.ReadFull(r.r, b[:])
	return binary.LittleEndian.Uint32(b[:])
}

func (r *reader) u64() uint64 {
	var b [8]byte
	if r.err != nil {
		return 0
	}
	_, r.err = io.ReadFull(r.r, b[:])
	return binary.LittleEndian.Uint64(b[:])
}

const maxStr = 16 << 20

func (r *reader) str() string {
	n := r.u32()
	if r.err != nil {
		return ""
	}
	if n > maxStr {
		r.err = fmt.Errorf("classfile: string length %d too large", n)
		return ""
	}
	// Grow the buffer as bytes actually arrive instead of trusting the
	// declared length: a corrupt 4-byte header must not reserve
	// megabytes before the (truncated) payload fails to materialize.
	var sb strings.Builder
	sb.Grow(capHint(n, 64<<10))
	if _, err := io.CopyN(&sb, r.r, int64(n)); err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		r.err = err
		return ""
	}
	return sb.String()
}

// Write serializes classes to w.
func Write(out io.Writer, classes []*bytecode.Class) error {
	w := &writer{w: bufio.NewWriter(out)}
	w.u32(Magic)
	w.u32(Version)
	w.u32(uint32(len(classes)))
	for _, c := range classes {
		writeClass(w, c)
	}
	if w.err != nil {
		return w.err
	}
	return w.w.Flush()
}

func writeClass(w *writer, c *bytecode.Class) {
	w.str(c.Name)
	w.str(c.SuperName)

	w.u32(uint32(len(c.Fields)))
	for _, f := range c.Fields {
		w.str(f.Name)
		w.u8(uint8(f.Type))
	}
	w.u32(uint32(len(c.Statics)))
	for _, f := range c.Statics {
		w.str(f.Name)
		w.u8(uint8(f.Type))
	}

	p := &c.Pool
	w.u32(uint32(len(p.Floats)))
	for _, f := range p.Floats {
		w.u64(math.Float64bits(f))
	}
	w.u32(uint32(len(p.Strings)))
	for _, s := range p.Strings {
		w.str(s)
	}
	w.u32(uint32(len(p.Classes)))
	for _, cr := range p.Classes {
		w.str(cr.Name)
	}
	w.u32(uint32(len(p.Fields)))
	for _, fr := range p.Fields {
		w.str(fr.Class)
		w.str(fr.Name)
	}
	w.u32(uint32(len(p.Methods)))
	for _, mr := range p.Methods {
		w.str(mr.Class)
		w.str(mr.Name)
		w.str(mr.Sig)
	}

	w.u32(uint32(len(c.Methods)))
	for _, m := range c.Methods {
		w.str(m.Name)
		w.str(m.Sig.String())
		w.u32(m.Flags)
		w.u32(uint32(m.MaxLocals))
		w.u32(uint32(len(m.Code)))
		for _, ins := range m.Code {
			w.u8(uint8(ins.Op))
			w.u32(uint32(ins.A))
			w.u32(uint32(ins.B))
		}
	}
}

// Read deserializes a class bundle.
func Read(in io.Reader) ([]*bytecode.Class, error) {
	r := &reader{r: bufio.NewReader(in)}
	if m := r.u32(); m != Magic {
		if r.err != nil {
			return nil, r.err
		}
		return nil, fmt.Errorf("classfile: bad magic 0x%x", m)
	}
	if v := r.u32(); v != Version {
		if r.err != nil {
			return nil, r.err
		}
		return nil, fmt.Errorf("classfile: unsupported version %d (want %d)", v, Version)
	}
	n := r.u32()
	if n > 1<<20 {
		return nil, fmt.Errorf("classfile: implausible class count %d", n)
	}
	classes := make([]*bytecode.Class, 0, capHint(n, 256))
	for i := uint32(0); i < n; i++ {
		c, err := readClass(r)
		if err != nil {
			return nil, err
		}
		classes = append(classes, c)
	}
	if r.err != nil {
		return nil, r.err
	}
	return classes, nil
}

func readClass(r *reader) (*bytecode.Class, error) {
	c := &bytecode.Class{}
	c.Name = r.str()
	c.SuperName = r.str()

	nf := r.u32()
	for i := uint32(0); i < nf && r.err == nil; i++ {
		c.Fields = append(c.Fields, bytecode.Field{
			Name: r.str(), Type: bytecode.Type(r.u8()),
		})
	}
	ns := r.u32()
	for i := uint32(0); i < ns && r.err == nil; i++ {
		c.Statics = append(c.Statics, bytecode.Field{
			Name: r.str(), Type: bytecode.Type(r.u8()),
		})
	}

	p := &c.Pool
	for i, n := uint32(0), r.u32(); i < n && r.err == nil; i++ {
		p.Floats = append(p.Floats, math.Float64frombits(r.u64()))
	}
	for i, n := uint32(0), r.u32(); i < n && r.err == nil; i++ {
		p.Strings = append(p.Strings, r.str())
	}
	for i, n := uint32(0), r.u32(); i < n && r.err == nil; i++ {
		p.Classes = append(p.Classes, bytecode.ClassRef{Name: r.str()})
	}
	for i, n := uint32(0), r.u32(); i < n && r.err == nil; i++ {
		p.Fields = append(p.Fields, bytecode.FieldRef{Class: r.str(), Name: r.str()})
	}
	for i, n := uint32(0), r.u32(); i < n && r.err == nil; i++ {
		p.Methods = append(p.Methods, bytecode.MethodRef{
			Class: r.str(), Name: r.str(), Sig: r.str(),
		})
	}

	nm := r.u32()
	for i := uint32(0); i < nm && r.err == nil; i++ {
		name := r.str()
		sigStr := r.str()
		sig, err := bytecode.ParseSignature(sigStr)
		if err != nil && r.err == nil {
			return nil, fmt.Errorf("classfile: %s.%s: %v", c.Name, name, err)
		}
		m := &bytecode.Method{
			Name: name, Sig: sig,
			Flags:     r.u32(),
			MaxLocals: int(r.u32()),
		}
		nc := r.u32()
		if nc > 1<<24 {
			return nil, fmt.Errorf("classfile: %s.%s: implausible code size %d", c.Name, name, nc)
		}
		m.Code = make([]bytecode.Instr, 0, capHint(nc, 4096))
		for j := uint32(0); j < nc && r.err == nil; j++ {
			m.Code = append(m.Code, bytecode.Instr{
				Op: bytecode.Op(r.u8()),
				A:  int32(r.u32()),
				B:  int32(r.u32()),
			})
		}
		c.Methods = append(c.Methods, m)
	}
	return c, r.err
}

// capHint bounds a declared element count before it is trusted as an
// allocation size: a few header bytes must not reserve megabytes. The
// slice still grows to the declared count, but only as real input bytes
// back it.
func capHint(declared uint32, max int) int {
	if declared > uint32(max) {
		return max
	}
	return int(declared)
}

// Bytes serializes to a byte slice (testing convenience).
func Bytes(classes []*bytecode.Class) ([]byte, error) {
	var buf bytes.Buffer
	if err := Write(&buf, classes); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}
