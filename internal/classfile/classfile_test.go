package classfile

import (
	"bytes"
	"testing"
	"testing/quick"

	"jrs/internal/bytecode"
	"jrs/internal/core"
	"jrs/internal/minijava"
)

const sampleSrc = `
class Point {
	int x, y;
	static int made;
	Point(int a, int b) { x = a; y = b; made = made + 1; }
	int dist() { return x * x + y * y; }
}
class Main {
	static void main() {
		Point p = new Point(3, 4);
		Sys.printi(p.dist());
		Sys.print(" n=");
		Sys.printi(Point.made);
	}
}`

func compileSample(t *testing.T) []*bytecode.Class {
	t.Helper()
	classes, err := minijava.Compile("p.mj", sampleSrc)
	if err != nil {
		t.Fatal(err)
	}
	return classes
}

func TestRoundTripStructure(t *testing.T) {
	classes := compileSample(t)
	data, err := Bytes(classes)
	if err != nil {
		t.Fatal(err)
	}
	back, err := Read(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != len(classes) {
		t.Fatalf("class count %d != %d", len(back), len(classes))
	}
	for i, c := range classes {
		b := back[i]
		if b.Name != c.Name || b.SuperName != c.SuperName {
			t.Errorf("class %d identity", i)
		}
		if len(b.Fields) != len(c.Fields) || len(b.Statics) != len(c.Statics) {
			t.Errorf("%s: member counts", c.Name)
		}
		if len(b.Methods) != len(c.Methods) {
			t.Fatalf("%s: method counts", c.Name)
		}
		for j, m := range c.Methods {
			bm := b.Methods[j]
			if bm.Name != m.Name || bm.Sig.String() != m.Sig.String() ||
				bm.Flags != m.Flags || bm.MaxLocals != m.MaxLocals {
				t.Errorf("%s.%s header mismatch", c.Name, m.Name)
			}
			if len(bm.Code) != len(m.Code) {
				t.Fatalf("%s.%s code length", c.Name, m.Name)
			}
			for k := range m.Code {
				if bm.Code[k] != m.Code[k] {
					t.Errorf("%s.%s instr %d: %v != %v", c.Name, m.Name, k,
						bm.Code[k], m.Code[k])
				}
			}
		}
		if len(b.Pool.Floats) != len(c.Pool.Floats) ||
			len(b.Pool.Strings) != len(c.Pool.Strings) ||
			len(b.Pool.Methods) != len(c.Pool.Methods) {
			t.Errorf("%s: pool shape", c.Name)
		}
	}
}

// TestRoundTripExecutes is the strongest check: a deserialized program
// runs identically to the original.
func TestRoundTripExecutes(t *testing.T) {
	run := func(classes []*bytecode.Class) string {
		e := core.New(core.Config{Policy: core.CompileFirst{}})
		if err := e.VM.Load(classes); err != nil {
			t.Fatal(err)
		}
		m, err := e.VM.LookupMain()
		if err != nil {
			t.Fatal(err)
		}
		if err := e.Run(m); err != nil {
			t.Fatal(err)
		}
		return e.VM.Out.String()
	}
	orig := run(compileSample(t))

	data, err := Bytes(compileSample(t))
	if err != nil {
		t.Fatal(err)
	}
	back, err := Read(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	if got := run(back); got != orig {
		t.Fatalf("deserialized run %q != original %q", got, orig)
	}
	if orig != "25 n=1" {
		t.Fatalf("unexpected program output %q", orig)
	}
}

func TestBadInputs(t *testing.T) {
	if _, err := Read(bytes.NewReader([]byte{1, 2, 3})); err == nil {
		t.Error("truncated input should fail")
	}
	if _, err := Read(bytes.NewReader([]byte{0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0})); err == nil {
		t.Error("bad magic should fail")
	}
	// Wrong version.
	good, _ := Bytes(nil)
	bad := append([]byte{}, good...)
	bad[4] = 99
	if _, err := Read(bytes.NewReader(bad)); err == nil {
		t.Error("bad version should fail")
	}
}

// Property: serialization round-trips arbitrary (structurally plausible)
// string and numeric pool content.
func TestPoolRoundTripProperty(t *testing.T) {
	f := func(names []string, floats []float64) bool {
		c := &bytecode.Class{Name: "X"}
		for _, n := range names {
			c.Pool.Strings = append(c.Pool.Strings, n)
		}
		c.Pool.Floats = floats
		sig, _ := bytecode.ParseSignature("()V")
		c.Methods = []*bytecode.Method{{Name: "m", Sig: sig, MaxLocals: 1,
			Code: []bytecode.Instr{{Op: bytecode.Return}}}}
		data, err := Bytes([]*bytecode.Class{c})
		if err != nil {
			return false
		}
		back, err := Read(bytes.NewReader(data))
		if err != nil || len(back) != 1 {
			return false
		}
		b := back[0]
		if len(b.Pool.Strings) != len(c.Pool.Strings) ||
			len(b.Pool.Floats) != len(c.Pool.Floats) {
			return false
		}
		for i := range c.Pool.Strings {
			if b.Pool.Strings[i] != c.Pool.Strings[i] {
				return false
			}
		}
		for i := range c.Pool.Floats {
			fa, fb := c.Pool.Floats[i], b.Pool.Floats[i]
			if fa != fb && (fa == fa || fb == fb) { // NaN-tolerant
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
