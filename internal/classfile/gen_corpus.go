//go:build ignore

// gen_corpus regenerates the seed corpus for FuzzRead:
//
//	go run gen_corpus.go
//
// It writes go-fuzz v1 corpus files under testdata/fuzz/FuzzRead: a
// valid serialized bundle, a truncation of it, and a bare header whose
// class count promises more data than follows.
package main

import (
	"encoding/binary"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"strconv"

	"jrs/internal/classfile"
	"jrs/internal/minijava"
)

func main() {
	classes, err := minijava.Compile("p.mj", `
class Point {
	int x, y;
	Point(int a, int b) { x = a; y = b; }
	int dist() { return x * x + y * y; }
}
class Main {
	static void main() { Sys.printi(new Point(3, 4).dist()); }
}`)
	if err != nil {
		log.Fatal(err)
	}
	valid, err := classfile.Bytes(classes)
	if err != nil {
		log.Fatal(err)
	}

	header := make([]byte, 12)
	binary.LittleEndian.PutUint32(header[0:], classfile.Magic)
	binary.LittleEndian.PutUint32(header[4:], classfile.Version)
	binary.LittleEndian.PutUint32(header[8:], 3)

	dir := filepath.Join("testdata", "fuzz", "FuzzRead")
	if err := os.MkdirAll(dir, 0o755); err != nil {
		log.Fatal(err)
	}
	for name, data := range map[string][]byte{
		"seed-valid":     valid,
		"seed-truncated": valid[:len(valid)/2],
		"seed-header":    header,
	} {
		body := "go test fuzz v1\n[]byte(" + strconv.Quote(string(data)) + ")\n"
		if err := os.WriteFile(filepath.Join(dir, name), []byte(body), 0o644); err != nil {
			log.Fatal(err)
		}
		fmt.Println("wrote", filepath.Join(dir, name))
	}
}
