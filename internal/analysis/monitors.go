package analysis

import (
	"fmt"

	"jrs/internal/bytecode"
)

// monitorBalancePass checks structured locking: along every path from
// entry, MonitorEnter and MonitorExit must pair like brackets — no exit
// without a matching enter, the same nesting depth wherever two paths
// merge, and depth zero at every return. This is the static mirror of
// the §5 lock-behaviour study: the dynamic monitor managers (thin,
// fat, one-bit) all assume balanced usage, and an unbalanced method
// would wedge a green thread (self-deadlock) or corrupt a lock word
// rather than fail cleanly.
func monitorBalancePass(c *bytecode.Class, m *bytecode.Method, g *Graph) []Diagnostic {
	in, err := Solve[monitorDepth](g, &monitorFlow{m: m})
	if err != nil {
		return []Diagnostic{{Method: m.FullName(), PC: errPC(err),
			Pass: "monitor-balance", Sev: Error, Msg: err.Error()}}
	}
	// Depth agreement held everywhere; report return-with-held-monitor
	// and the method's static locking depth is sound. Walk once for the
	// return checks.
	var out []Diagnostic
	for _, bi := range g.RPO {
		b := g.Blocks[bi]
		depth := int(in[bi])
		for i := b.Start; i < b.End; i++ {
			switch op := g.M.Code[i].Op; op {
			case bytecode.MonitorEnter:
				depth++
			case bytecode.MonitorExit:
				depth--
			case bytecode.Return, bytecode.IReturn, bytecode.FReturn, bytecode.AReturn:
				if depth != 0 {
					out = append(out, Diagnostic{
						Method: m.FullName(), PC: i, Pass: "monitor-balance", Sev: Error,
						Msg: fmt.Sprintf("return with %d monitor(s) still held", depth),
					})
				}
			}
		}
	}
	return out
}

// monitorDepth is the dataflow fact: the number of monitors held on
// entry to a block. All paths must agree.
type monitorDepth int

type monitorFlow struct {
	m *bytecode.Method
}

func (f *monitorFlow) Entry(*Graph) monitorDepth { return 0 }

func (f *monitorFlow) Transfer(g *Graph, b *Block, in monitorDepth) (monitorDepth, error) {
	depth := in
	for i := b.Start; i < b.End; i++ {
		switch g.M.Code[i].Op {
		case bytecode.MonitorEnter:
			depth++
		case bytecode.MonitorExit:
			depth--
			if depth < 0 {
				return 0, &posError{pc: i,
					msg: fmt.Sprintf("%s @%d: monitorexit without a matching monitorenter",
						f.m.FullName(), i)}
			}
		}
	}
	return depth, nil
}

func (f *monitorFlow) Join(g *Graph, b *Block, have, incoming monitorDepth) (monitorDepth, bool, error) {
	if have != incoming {
		return 0, false, &posError{pc: b.Start,
			msg: fmt.Sprintf("%s @%d: unbalanced monitors at join (%d vs %d held)",
				f.m.FullName(), b.Start, have, incoming)}
	}
	return have, false, nil
}
