package ipa

import (
	"sort"

	"jrs/internal/bytecode"
)

// The per-method abstract interpreter. Each stack slot and local holds
// a small *set* of possible sources — Null, Param(index), Alloc(site) —
// plus an "unknown" bit for values the analysis cannot name (ints,
// heap loads, call results). Joins union the sets, so no constituent is
// ever lost at a merge: if an allocation flows into an escaping
// position along any path, the escape solver sees it.
//
// The unknown bit is deliberately ignorable for escape purposes: a
// reference can only become unknown by being loaded from the heap (or
// returned from a call), and to get into the heap it must have been
// stored there — which already marked it escaped at the store site.
// For elision decisions the bit is a veto instead: a monitor operand or
// receiver with an unknown component might be a shared object, so it
// never qualifies as thread-local.

const (
	rNull uint8 = iota
	rParam
	rAlloc
)

type ref struct {
	kind uint8
	id   int // alloc-site instruction index, or argument slot
}

func refLess(a, b ref) bool {
	if a.kind != b.kind {
		return a.kind < b.kind
	}
	return a.id < b.id
}

// absVal is a set of possible sources plus the unknown bit. members is
// sorted and deduplicated.
type absVal struct {
	unknown bool
	members []ref
}

var top = absVal{unknown: true}

func valNull() absVal       { return absVal{members: []ref{{kind: rNull}}} }
func valParam(i int) absVal { return absVal{members: []ref{{kind: rParam, id: i}}} }
func valAlloc(pc int) absVal {
	return absVal{members: []ref{{kind: rAlloc, id: pc}}}
}

// singleAlloc reports the value's allocation site when it is exactly
// one allocation and nothing else.
func (v absVal) singleAlloc() (int, bool) {
	if !v.unknown && len(v.members) == 1 && v.members[0].kind == rAlloc {
		return v.members[0].id, true
	}
	return 0, false
}

func joinVal(a, b absVal) absVal {
	if equalVal(a, b) {
		return a
	}
	out := absVal{unknown: a.unknown || b.unknown}
	out.members = append(append([]ref(nil), a.members...), b.members...)
	sort.Slice(out.members, func(i, j int) bool { return refLess(out.members[i], out.members[j]) })
	w := 0
	for i, m := range out.members {
		if i == 0 || m != out.members[w-1] {
			out.members[w] = m
			w++
		}
	}
	out.members = out.members[:w]
	return out
}

func equalVal(a, b absVal) bool {
	if a.unknown != b.unknown || len(a.members) != len(b.members) {
		return false
	}
	for i := range a.members {
		if a.members[i] != b.members[i] {
			return false
		}
	}
	return true
}

// callFact records one call site's resolution and abstract arguments
// (receiver first for instance calls).
type callFact struct {
	pc      int
	callee  *bytecode.Method
	virtual bool
	sys     bool
	args    []absVal
}

// methodFacts is everything the escape/effect/devirt solvers need from
// one method body.
type methodFacts struct {
	stores   []absVal       // values stored to heap or returned: they escape
	spawned  []absVal       // values handed to Sys.spawn: they escape
	calls    []callFact     // every call site, in pc order
	monitors map[int]absVal // monitorenter/exit pc -> operand
	intra    Effect         // local effects (calls excluded)
	callIdx  map[int]int    // pc -> index into calls
}

func (f *methodFacts) callAt(pc int) *callFact {
	if i, ok := f.callIdx[pc]; ok {
		return &f.calls[i]
	}
	return nil
}

// collectFacts runs the abstract interpreter over every reachable
// method body and sizes the escape summaries.
func (r *Result) collectFacts() {
	for _, c := range r.classes {
		for _, m := range c.Methods {
			if !r.Reachable[m] || m.Class.Name == "Sys" || len(m.Code) == 0 {
				continue
			}
			r.facts[m] = r.interpret(m)
			r.ParamEscapes[m] = make([]bool, m.NumArgs())
		}
	}
}

type absState struct {
	stack  []absVal
	locals []absVal
}

func (s absState) clone() absState {
	return absState{
		stack:  append([]absVal(nil), s.stack...),
		locals: append([]absVal(nil), s.locals...),
	}
}

// mergeInto joins src into dst pointwise, reporting change. Verified
// code guarantees agreeing stack depths at joins.
func mergeInto(dst *absState, src absState) bool {
	changed := false
	for i := range dst.stack {
		if j := joinVal(dst.stack[i], src.stack[i]); !equalVal(j, dst.stack[i]) {
			dst.stack[i] = j
			changed = true
		}
	}
	for i := range dst.locals {
		if j := joinVal(dst.locals[i], src.locals[i]); !equalVal(j, dst.locals[i]) {
			dst.locals[i] = j
			changed = true
		}
	}
	return changed
}

func (r *Result) interpret(m *bytecode.Method) *methodFacts {
	f := &methodFacts{
		monitors: map[int]absVal{},
		callIdx:  map[int]int{},
	}

	entry := absState{locals: make([]absVal, m.MaxLocals)}
	for i := range entry.locals {
		entry.locals[i] = top
	}
	for i := 0; i < m.NumArgs() && i < len(entry.locals); i++ {
		entry.locals[i] = valParam(i)
	}

	in := map[int]*absState{0: &entry}
	work := []int{0}
	queued := map[int]bool{0: true}
	for len(work) > 0 {
		pc := work[len(work)-1]
		work = work[:len(work)-1]
		queued[pc] = false
		st := in[pc].clone()
		for _, s := range r.step(m, f, pc, &st) {
			if s < 0 || s >= len(m.Code) {
				continue
			}
			if prev, ok := in[s]; !ok {
				cp := st.clone()
				in[s] = &cp
			} else if !mergeInto(prev, st) {
				continue
			}
			if !queued[s] {
				queued[s] = true
				work = append(work, s)
			}
		}
	}

	// Deterministic pc order for the solvers.
	sort.SliceStable(f.calls, func(i, j int) bool { return f.calls[i].pc < f.calls[j].pc })
	for i := range f.calls {
		f.callIdx[f.calls[i].pc] = i
	}
	f.intra = intraEffects(m)
	return f
}

// step applies one instruction to st, records facts, and returns the
// successor instruction indices.
func (r *Result) step(m *bytecode.Method, f *methodFacts, pc int, st *absState) []int {
	ins := m.Code[pc]
	push := func(v absVal) { st.stack = append(st.stack, v) }
	pop := func() absVal {
		v := st.stack[len(st.stack)-1]
		st.stack = st.stack[:len(st.stack)-1]
		return v
	}
	popN := func(n int) []absVal {
		vs := append([]absVal(nil), st.stack[len(st.stack)-n:]...)
		st.stack = st.stack[:len(st.stack)-n]
		return vs
	}
	next := []int{pc + 1}

	switch op := ins.Op; {
	case op == bytecode.Nop || op == bytecode.IInc:
	case op == bytecode.IConst || op == bytecode.FConst || op == bytecode.SConst ||
		op == bytecode.ILoad || op == bytecode.FLoad:
		push(top)
	case op == bytecode.AConstNull:
		push(valNull())
	case op == bytecode.ALoad:
		push(st.locals[ins.A])
	case op == bytecode.IStore || op == bytecode.FStore:
		pop()
	case op == bytecode.AStore:
		st.locals[ins.A] = pop()
	case op == bytecode.Pop:
		pop()
	case op == bytecode.Dup:
		push(st.stack[len(st.stack)-1])
	case op == bytecode.Swap:
		n := len(st.stack)
		st.stack[n-1], st.stack[n-2] = st.stack[n-2], st.stack[n-1]
	case op >= bytecode.IAdd && op <= bytecode.IUshr && op != bytecode.INeg:
		popN(2)
		push(top)
	case op == bytecode.INeg || op == bytecode.FNeg || op == bytecode.I2F || op == bytecode.F2I:
		pop()
		push(top)
	case op == bytecode.FAdd || op == bytecode.FSub || op == bytecode.FMul ||
		op == bytecode.FDiv || op == bytecode.FCmp:
		popN(2)
		push(top)
	case op == bytecode.New:
		r.AllocClass[Site{m.ID, pc}] = m.Class.Pool.Classes[ins.A].Resolved
		push(valAlloc(pc))
	case op == bytecode.NewArray:
		pop()
		r.AllocClass[Site{m.ID, pc}] = nil
		push(valAlloc(pc))
	case op == bytecode.ArrayLength:
		pop()
		push(top)
	case op == bytecode.IALoad || op == bytecode.FALoad || op == bytecode.AALoad ||
		op == bytecode.CALoad:
		popN(2)
		push(top)
	case op == bytecode.AAStore:
		f.stores = append(f.stores, st.stack[len(st.stack)-1])
		popN(3)
	case op == bytecode.IAStore || op == bytecode.FAStore || op == bytecode.CAStore:
		popN(3)
	case op == bytecode.Goto:
		return []int{int(ins.A)}
	case op == bytecode.IfEq || op == bytecode.IfNe || op == bytecode.IfLt ||
		op == bytecode.IfGe || op == bytecode.IfGt || op == bytecode.IfLe ||
		op == bytecode.IfNull || op == bytecode.IfNonNull:
		pop()
		return []int{pc + 1, int(ins.A)}
	case op >= bytecode.IfICmpEq && op <= bytecode.IfACmpNe:
		popN(2)
		return []int{pc + 1, int(ins.A)}
	case op == bytecode.GetField:
		pop()
		push(top)
	case op == bytecode.PutField:
		f.stores = append(f.stores, st.stack[len(st.stack)-1])
		popN(2)
	case op == bytecode.GetStatic:
		push(top)
	case op == bytecode.PutStatic:
		f.stores = append(f.stores, pop())
	case op.IsInvoke():
		callee := m.Class.Pool.Methods[ins.A].Resolved
		args := popN(callee.NumArgs())
		cf := callFact{
			pc:      pc,
			callee:  callee,
			virtual: op == bytecode.InvokeVirtual,
			sys:     callee.Class.Name == "Sys",
			args:    args,
		}
		if cf.sys && callee.Name == "spawn" && len(args) > 0 {
			f.spawned = append(f.spawned, args[0])
		}
		// On revisits the site's fact is joined in place, never
		// duplicated, so the recorded arguments cover every path.
		if i, ok := f.callIdx[pc]; ok {
			for j := range cf.args {
				f.calls[i].args[j] = joinVal(f.calls[i].args[j], cf.args[j])
			}
		} else {
			f.callIdx[pc] = len(f.calls)
			f.calls = append(f.calls, cf)
		}
		if callee.Sig.Ret != bytecode.TVoid {
			push(top)
		}
	case op == bytecode.Return:
		return nil
	case op == bytecode.IReturn || op == bytecode.FReturn:
		pop()
		return nil
	case op == bytecode.AReturn:
		f.stores = append(f.stores, pop())
		return nil
	case op == bytecode.MonitorEnter || op == bytecode.MonitorExit:
		v := pop()
		if prev, ok := f.monitors[pc]; ok {
			f.monitors[pc] = joinVal(prev, v)
		} else {
			f.monitors[pc] = v
		}
	}
	return next
}

// intraEffects scans a body linearly (dead code included — sound) for
// local effects; call effects are folded in by the SCC solver.
func intraEffects(m *bytecode.Method) Effect {
	var e Effect
	if m.IsSynchronized() {
		e |= EffLock
	}
	for _, ins := range m.Code {
		switch op := ins.Op; {
		case op == bytecode.GetField || op == bytecode.GetStatic ||
			op == bytecode.IALoad || op == bytecode.FALoad ||
			op == bytecode.AALoad || op == bytecode.CALoad ||
			op == bytecode.ArrayLength:
			e |= EffReadHeap
		case op == bytecode.PutField || op == bytecode.PutStatic ||
			op == bytecode.IAStore || op == bytecode.FAStore ||
			op == bytecode.AAStore || op == bytecode.CAStore:
			e |= EffWriteHeap
		case op == bytecode.New || op == bytecode.NewArray || op == bytecode.SConst:
			e |= EffAlloc
		case op == bytecode.MonitorEnter || op == bytecode.MonitorExit:
			e |= EffLock
		}
	}
	return e
}
