// Package ipa implements whole-program interprocedural analysis over a
// loaded class set: a rapid-type-analysis call graph (direct edges for
// invokestatic/invokespecial, CHA-resolved target sets for
// invokevirtual restricted to instantiated receivers), single-target
// devirtualization facts, a flow-insensitive interprocedural escape
// pass driving lock elision, and per-method side-effect summaries
// cached bottom-up over SCCs of the call graph.
//
// The paper's two sharpest costs — indirect-jump mispredictions from
// virtual dispatch (§4.2, Table 2) and thread-local lock operations
// (§5, Figure 11) — are exactly what these facts remove: a devirtualized
// site compiles to a direct call instead of a vtable-indexed indirect
// jump, and a monitor operation on a provably non-escaping object can
// be dropped before the monitor subsystem ever sees it.
//
// Analyze requires classes that have been through vm.Load: pools
// resolved, global method ids assigned, vtables materialized.
package ipa

import (
	"sort"

	"jrs/internal/bytecode"
)

// Site identifies one instruction: the containing method's global id
// and the instruction index within its Code slice.
type Site struct {
	Method int
	PC     int
}

// Effect is a method's transitive side-effect summary bitmask.
type Effect uint8

const (
	EffReadHeap  Effect = 1 << iota // reads a field, static, or array element
	EffWriteHeap                    // writes a field, static, or array element
	EffAlloc                        // allocates an object or array
	EffLock                         // enters/exits a monitor (incl. synchronized)
	EffIO                           // produces output via a Sys print intrinsic
	EffThread                       // spawns, joins, or yields
)

// String renders the mask as a fixed-width "RWALIT" flag string.
func (e Effect) String() string {
	const letters = "RWALIT"
	b := []byte("------")
	for i := 0; i < len(letters); i++ {
		if e&(1<<i) != 0 {
			b[i] = letters[i]
		}
	}
	return string(b)
}

// Pure reports whether the method is observably side-effect free: it
// may read the heap and allocate, but never writes, locks, prints, or
// touches threads.
func (e Effect) Pure() bool {
	return e&(EffWriteHeap|EffLock|EffIO|EffThread) == 0
}

// Result holds every interprocedural fact for one program.
type Result struct {
	// Reachable and Instantiated are the RTA fixpoint: methods callable
	// from any static niladic main (plus run()V of instantiated classes
	// once Sys.spawn is reachable), and classes with a reachable New.
	Reachable    map[*bytecode.Method]bool
	Instantiated map[*bytecode.Class]bool
	Roots        []*bytecode.Method

	// Targets maps each reachable invokevirtual site to its CHA target
	// set over instantiated receivers, sorted by method id.
	Targets map[Site][]*bytecode.Method

	// Devirt maps virtual sites proven single-target (CHA singleton, or
	// exact receiver type from the abstract interpreter) to that target.
	Devirt map[Site]*bytecode.Method

	// AllocClass records every reachable allocation site (nil class for
	// arrays); Escaped marks the sites whose reference leaves the
	// allocating stack: stored into any heap location, returned,
	// spawned as a thread, or passed to a parameter that escapes.
	AllocClass map[Site]*bytecode.Class
	Escaped    map[Site]bool

	// ParamEscapes[m][i] is true when m may let its i-th argument slot
	// (receiver included) escape. Effects is the transitive summary.
	ParamEscapes map[*bytecode.Method][]bool
	Effects      map[*bytecode.Method]Effect

	// SCCs lists call-graph components callee-first (reverse
	// topological order of the condensation).
	SCCs [][]*bytecode.Method

	// ElideCalls maps invokevirtual sites whose receiver is a
	// thread-local allocation and whose unique target is synchronized:
	// the lock is provably uncontended and the call may bind to an
	// unsynchronized twin. ElideMonitors marks methods in which every
	// monitorenter/monitorexit operand is a thread-local allocation, so
	// all of the method's monitor bytecodes may be dropped together.
	ElideCalls    map[Site]*bytecode.Method
	ElideMonitors map[*bytecode.Method]bool

	// ElideRecv maps each ElideCalls site to the receiver allocation
	// site the proof rests on; ElideMonitorSites lists the allocation
	// sites backing an ElideMonitors verdict. Downstream safety checks
	// (the race analysis cross-check) key their vetoes on these sites.
	ElideRecv         map[Site]Site
	ElideMonitorSites map[*bytecode.Method][]Site

	classes   []*bytecode.Class
	byID      map[int]*bytecode.Method
	byName    map[string]*bytecode.Class
	facts     map[*bytecode.Method]*methodFacts
	spawnUsed bool
}

// Analyze runs the whole pipeline over a loaded class set.
func Analyze(classes []*bytecode.Class) *Result {
	r := &Result{
		Reachable:         map[*bytecode.Method]bool{},
		Instantiated:      map[*bytecode.Class]bool{},
		Targets:           map[Site][]*bytecode.Method{},
		Devirt:            map[Site]*bytecode.Method{},
		AllocClass:        map[Site]*bytecode.Class{},
		Escaped:           map[Site]bool{},
		ParamEscapes:      map[*bytecode.Method][]bool{},
		Effects:           map[*bytecode.Method]Effect{},
		ElideCalls:        map[Site]*bytecode.Method{},
		ElideMonitors:     map[*bytecode.Method]bool{},
		ElideRecv:         map[Site]Site{},
		ElideMonitorSites: map[*bytecode.Method][]Site{},
		classes:           classes,
		byID:              map[int]*bytecode.Method{},
		byName:            map[string]*bytecode.Class{},
		facts:             map[*bytecode.Method]*methodFacts{},
	}
	for _, c := range classes {
		r.byName[c.Name] = c
		for _, m := range c.Methods {
			r.byID[m.ID] = m
		}
	}
	r.buildCallGraph()
	r.collectFacts()
	r.condense()
	r.solveEscapes()
	r.solveEffects()
	r.decideDevirt()
	r.decideElision()
	return r
}

// MethodByID resolves a global method id within the analyzed set.
func (r *Result) MethodByID(id int) *bytecode.Method { return r.byID[id] }

// DevirtTargetID returns the proven unique target of the invokevirtual
// at (method id, instruction index), or nil when the site stays
// polymorphic. This is the fact the JIT consumes.
func (r *Result) DevirtTargetID(id, pc int) *bytecode.Method {
	return r.Devirt[Site{id, pc}]
}

// buildCallGraph runs the RTA fixpoint: repeatedly rescan reachable
// method bodies, growing the reachable-method and instantiated-class
// sets and the per-site virtual target sets until nothing changes.
// Roots are every static niladic main (vm.LookupMain picks one, but
// which one depends on load order, so all are kept); once Sys.spawn is
// reachable, run()V of every instantiated class is a root too.
func (r *Result) buildCallGraph() {
	for _, c := range r.classes {
		for _, m := range c.Methods {
			if m.IsStatic() && m.Name == "main" && len(m.Sig.Params) == 0 {
				r.Roots = append(r.Roots, m)
			}
		}
	}
	sort.Slice(r.Roots, func(i, j int) bool { return r.Roots[i].ID < r.Roots[j].ID })

	changed := true
	mark := func(m *bytecode.Method) {
		if m != nil && !r.Reachable[m] {
			r.Reachable[m] = true
			changed = true
		}
	}
	for changed {
		changed = false
		for _, m := range r.Roots {
			mark(m)
		}
		if r.spawnUsed {
			for _, c := range r.classes {
				if r.Instantiated[c] {
					mark(runMethod(c))
				}
			}
		}
		for _, c := range r.classes {
			for _, m := range c.Methods {
				if !r.Reachable[m] || m.Class.Name == "Sys" {
					continue
				}
				for pc, ins := range m.Code {
					switch ins.Op {
					case bytecode.New:
						cls := m.Class.Pool.Classes[ins.A].Resolved
						if cls != nil && !r.Instantiated[cls] {
							r.Instantiated[cls] = true
							changed = true
						}
					case bytecode.InvokeStatic, bytecode.InvokeSpecial:
						callee := m.Class.Pool.Methods[ins.A].Resolved
						if callee == nil {
							continue
						}
						if callee.Class.Name == "Sys" {
							if callee.Name == "spawn" && !r.spawnUsed {
								r.spawnUsed = true
								changed = true
							}
							continue
						}
						mark(callee)
					case bytecode.InvokeVirtual:
						ref := &m.Class.Pool.Methods[ins.A]
						callee := ref.Resolved
						if callee == nil || callee.VIndex < 0 {
							continue
						}
						// The receiver's static type is the class named
						// at the site, which may be a subtype of the
						// class resolution found the method in.
						named := r.byName[ref.Class]
						if named == nil {
							named = callee.Class
						}
						site := Site{m.ID, pc}
						ts := r.virtualTargets(named, callee.VIndex)
						if len(ts) != len(r.Targets[site]) {
							r.Targets[site] = ts
							changed = true
						}
						for _, t := range ts {
							mark(t)
						}
					}
				}
			}
		}
	}
}

// virtualTargets is the CHA set restricted to instantiated receivers:
// the distinct vtable entries at vidx over instantiated subclasses of
// the receiver's static type.
func (r *Result) virtualTargets(named *bytecode.Class, vidx int) []*bytecode.Method {
	var ts []*bytecode.Method
	seen := map[*bytecode.Method]bool{}
	for _, c := range r.classes {
		if !r.Instantiated[c] || !descends(c, named) || vidx >= len(c.VTable) {
			continue
		}
		if t := c.VTable[vidx]; t != nil && !seen[t] {
			seen[t] = true
			ts = append(ts, t)
		}
	}
	sort.Slice(ts, func(i, j int) bool { return ts[i].ID < ts[j].ID })
	return ts
}

func descends(c, anc *bytecode.Class) bool {
	for ; c != nil; c = c.Super {
		if c == anc {
			return true
		}
	}
	return false
}

// runMethod finds the run()V entry vm uses for spawned threads.
func runMethod(c *bytecode.Class) *bytecode.Method {
	for _, m := range c.VTable {
		if m.Name == "run" && len(m.Sig.Params) == 0 && m.Sig.Ret == bytecode.TVoid {
			return m
		}
	}
	return nil
}

// siteTargets returns the possible callees of one recorded call site.
func (r *Result) siteTargets(m *bytecode.Method, cf *callFact) []*bytecode.Method {
	if cf.virtual {
		return r.Targets[Site{m.ID, cf.pc}]
	}
	return []*bytecode.Method{cf.callee}
}

// decideDevirt fills Devirt: CHA singletons plus exact-receiver-type
// sites where the abstract interpreter pinned the receiver to a single
// allocation.
func (r *Result) decideDevirt() {
	for site, ts := range r.Targets {
		if len(ts) == 1 {
			r.Devirt[site] = ts[0]
			continue
		}
		m := r.byID[site.Method]
		f := r.facts[m]
		if f == nil {
			continue
		}
		cf := f.callAt(site.PC)
		if cf == nil || len(cf.args) == 0 {
			continue
		}
		if id, ok := cf.args[0].singleAlloc(); ok {
			cls := r.AllocClass[Site{m.ID, id}]
			if cls != nil && cf.callee.VIndex >= 0 && cf.callee.VIndex < len(cls.VTable) {
				r.Devirt[site] = cls.VTable[cf.callee.VIndex]
			}
		}
	}
}

// decideElision fills ElideCalls and ElideMonitors from the escape
// facts. Call-site elision requires an exact thread-local receiver and
// a synchronized unique target; monitor elision is all-or-nothing per
// method so enter/exit pairing is preserved trivially.
func (r *Result) decideElision() {
	for _, c := range r.classes {
		for _, m := range c.Methods {
			f := r.facts[m]
			if f == nil {
				continue
			}
			for i := range f.calls {
				cf := &f.calls[i]
				if !cf.virtual || len(cf.args) == 0 {
					continue
				}
				id, ok := cf.args[0].singleAlloc()
				if !ok {
					continue
				}
				as := Site{m.ID, id}
				cls := r.AllocClass[as]
				if cls == nil || r.Escaped[as] {
					continue
				}
				if cf.callee.VIndex < 0 || cf.callee.VIndex >= len(cls.VTable) {
					continue
				}
				if t := cls.VTable[cf.callee.VIndex]; t.IsSynchronized() {
					r.ElideCalls[Site{m.ID, cf.pc}] = t
					r.ElideRecv[Site{m.ID, cf.pc}] = as
				}
			}
			r.decideMonitorElision(m, f)
		}
	}
}

func (r *Result) decideMonitorElision(m *bytecode.Method, f *methodFacts) {
	total := 0
	for _, ins := range m.Code {
		if ins.Op == bytecode.MonitorEnter || ins.Op == bytecode.MonitorExit {
			total++
		}
	}
	if total == 0 {
		return
	}
	// Every monitor operand in the method must be a provably
	// thread-local allocation (class or array), including operands in
	// code the abstract interpreter never reached.
	if len(f.monitors) != total {
		return
	}
	var sites []Site
	for _, v := range f.monitors {
		if v.unknown || len(v.members) == 0 {
			return
		}
		for _, mr := range v.members {
			if mr.kind != rAlloc || r.Escaped[Site{m.ID, mr.id}] {
				return
			}
			sites = append(sites, Site{m.ID, mr.id})
		}
	}
	r.ElideMonitors[m] = true
	r.ElideMonitorSites[m] = sites
}
