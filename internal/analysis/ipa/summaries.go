package ipa

import (
	"sort"

	"jrs/internal/bytecode"
)

// condense runs Tarjan's algorithm over the reachable call graph and
// stores the components in emission order, which for Tarjan is reverse
// topological: every SCC appears after all SCCs it calls into. The
// bottom-up solvers walk this order so callee summaries are (mostly)
// final before callers read them; cycles converge in the outer
// fixpoint.
func (r *Result) condense() {
	var nodes []*bytecode.Method
	for _, c := range r.classes {
		for _, m := range c.Methods {
			if r.facts[m] != nil {
				nodes = append(nodes, m)
			}
		}
	}
	sort.Slice(nodes, func(i, j int) bool { return nodes[i].ID < nodes[j].ID })

	index := map[*bytecode.Method]int{}
	low := map[*bytecode.Method]int{}
	onStack := map[*bytecode.Method]bool{}
	var stack []*bytecode.Method
	next := 0

	var strong func(m *bytecode.Method)
	strong = func(m *bytecode.Method) {
		index[m] = next
		low[m] = next
		next++
		stack = append(stack, m)
		onStack[m] = true
		f := r.facts[m]
		for i := range f.calls {
			cf := &f.calls[i]
			if cf.sys {
				continue
			}
			for _, t := range r.siteTargets(m, cf) {
				if r.facts[t] == nil {
					continue
				}
				if _, seen := index[t]; !seen {
					strong(t)
					if low[t] < low[m] {
						low[m] = low[t]
					}
				} else if onStack[t] && index[t] < low[m] {
					low[m] = index[t]
				}
			}
		}
		if low[m] == index[m] {
			var scc []*bytecode.Method
			for {
				n := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				onStack[n] = false
				scc = append(scc, n)
				if n == m {
					break
				}
			}
			sort.Slice(scc, func(i, j int) bool { return scc[i].ID < scc[j].ID })
			r.SCCs = append(r.SCCs, scc)
		}
	}
	for _, m := range nodes {
		if _, seen := index[m]; !seen {
			strong(m)
		}
	}
}

// solveEscapes propagates escape facts to a fixpoint. A value escapes
// when it is stored into any heap location, returned, handed to
// Sys.spawn, or passed to an argument slot some possible callee lets
// escape. Walking SCCs callee-first makes the common acyclic case
// converge in one outer pass.
func (r *Result) solveEscapes() {
	changed := true
	for changed {
		changed = false
		for _, scc := range r.SCCs {
			for _, m := range scc {
				f := r.facts[m]
				for _, v := range f.stores {
					changed = r.escape(m, v) || changed
				}
				for _, v := range f.spawned {
					changed = r.escape(m, v) || changed
				}
				for i := range f.calls {
					cf := &f.calls[i]
					if cf.sys {
						continue // only spawn captures; handled above
					}
					targets := r.siteTargets(m, cf)
					for j, av := range cf.args {
						if r.argEscapes(targets, j) {
							changed = r.escape(m, av) || changed
						}
					}
				}
			}
		}
	}
}

// argEscapes reports whether argument slot j may escape through any of
// the possible callees; a callee without a summary is conservative.
func (r *Result) argEscapes(targets []*bytecode.Method, j int) bool {
	for _, t := range targets {
		pe, ok := r.ParamEscapes[t]
		if !ok || j >= len(pe) || pe[j] {
			return true
		}
	}
	return false
}

// escape marks every named constituent of v escaped in m's frame.
func (r *Result) escape(m *bytecode.Method, v absVal) bool {
	changed := false
	for _, mr := range v.members {
		switch mr.kind {
		case rAlloc:
			s := Site{m.ID, mr.id}
			if !r.Escaped[s] {
				r.Escaped[s] = true
				changed = true
			}
		case rParam:
			pe := r.ParamEscapes[m]
			if mr.id < len(pe) && !pe[mr.id] {
				pe[mr.id] = true
				changed = true
			}
		}
	}
	return changed
}

// solveEffects folds callee summaries into callers bottom-up.
func (r *Result) solveEffects() {
	changed := true
	for changed {
		changed = false
		for _, scc := range r.SCCs {
			for _, m := range scc {
				f := r.facts[m]
				e := f.intra
				for i := range f.calls {
					cf := &f.calls[i]
					if cf.sys {
						e |= sysEffect(cf.callee.Name)
						continue
					}
					for _, t := range r.siteTargets(m, cf) {
						e |= r.Effects[t]
					}
				}
				if e != r.Effects[m] {
					r.Effects[m] = e
					changed = true
				}
			}
		}
	}
}

func sysEffect(name string) Effect {
	switch name {
	case "print", "printi", "printf", "printc":
		return EffIO
	case "spawn":
		return EffThread | EffAlloc
	case "join", "yield":
		return EffThread
	}
	return 0
}

// Summary is the call-graph census the analyze report prints. Field
// order (and the json tags) is the `jrs analyze -json` contract.
type Summary struct {
	Classes             int `json:"classes"`
	Methods             int `json:"methods"`
	Reachable           int `json:"reachable"`
	Instantiated        int `json:"instantiated"`
	DirectEdges         int `json:"directEdges"`
	VirtualSites        int `json:"virtualSites"`
	VirtualEdges        int `json:"virtualEdges"`
	MonoSites           int `json:"monoSites"`   // CHA target set of size one
	DevirtSites         int `json:"devirtSites"` // Mono plus exact-receiver proofs
	SCCs                int `json:"sccs"`
	LargestSCC          int `json:"largestSCC"`
	AllocSites          int `json:"allocSites"`
	LocalAllocs         int `json:"localAllocs"`
	ElideCallSites      int `json:"elideCallSites"`
	ElideMonitorMethods int `json:"elideMonitorMethods"`
	PureMethods         int `json:"pureMethods"`
}

// Summarize computes the census over the final fact maps.
func (r *Result) Summarize() Summary {
	s := Summary{Classes: len(r.classes)}
	for _, c := range r.classes {
		s.Methods += len(c.Methods)
	}
	s.Reachable = len(r.Reachable)
	s.Instantiated = len(r.Instantiated)
	for _, ts := range r.Targets {
		s.VirtualSites++
		s.VirtualEdges += len(ts)
		if len(ts) == 1 {
			s.MonoSites++
		}
	}
	s.DevirtSites = len(r.Devirt)
	for _, m := range r.sortedMethods() {
		f := r.facts[m]
		for i := range f.calls {
			cf := &f.calls[i]
			if !cf.virtual && !cf.sys {
				s.DirectEdges++
			}
		}
	}
	s.SCCs = len(r.SCCs)
	for _, scc := range r.SCCs {
		if len(scc) > s.LargestSCC {
			s.LargestSCC = len(scc)
		}
	}
	s.AllocSites = len(r.AllocClass)
	for site := range r.AllocClass {
		if !r.Escaped[site] {
			s.LocalAllocs++
		}
	}
	s.ElideCallSites = len(r.ElideCalls)
	s.ElideMonitorMethods = len(r.ElideMonitors)
	for _, e := range r.Effects {
		if e.Pure() {
			s.PureMethods++
		}
	}
	return s
}

func (r *Result) sortedMethods() []*bytecode.Method {
	ms := make([]*bytecode.Method, 0, len(r.facts))
	for _, c := range r.classes {
		for _, m := range c.Methods {
			if r.facts[m] != nil {
				ms = append(ms, m)
			}
		}
	}
	sort.Slice(ms, func(i, j int) bool { return ms[i].ID < ms[j].ID })
	return ms
}

// SiteFact is one (site, target) fact rendered for reports.
type SiteFact struct {
	Caller *bytecode.Method
	PC     int
	Target *bytecode.Method
}

func (r *Result) sortedSiteFacts(m map[Site]*bytecode.Method) []SiteFact {
	out := make([]SiteFact, 0, len(m))
	for site, t := range m {
		out = append(out, SiteFact{Caller: r.byID[site.Method], PC: site.PC, Target: t})
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Caller.ID != b.Caller.ID {
			return a.Caller.ID < b.Caller.ID
		}
		return a.PC < b.PC
	})
	return out
}

// SortedDevirt lists devirtualized sites in (method id, pc) order.
func (r *Result) SortedDevirt() []SiteFact { return r.sortedSiteFacts(r.Devirt) }

// SortedElideCalls lists elidable synchronized call sites in order.
func (r *Result) SortedElideCalls() []SiteFact { return r.sortedSiteFacts(r.ElideCalls) }

// SortedElideMonitors lists methods whose monitor bytecodes are
// elidable, in method-id order.
func (r *Result) SortedElideMonitors() []*bytecode.Method {
	out := make([]*bytecode.Method, 0, len(r.ElideMonitors))
	for m := range r.ElideMonitors {
		out = append(out, m)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// MethodEffect pairs a method with its transitive summary.
type MethodEffect struct {
	Method *bytecode.Method
	Effect Effect
}

// SortedEffects lists reachable-method summaries in method-id order.
func (r *Result) SortedEffects() []MethodEffect {
	out := make([]MethodEffect, 0, len(r.Effects))
	for m, e := range r.Effects {
		out = append(out, MethodEffect{Method: m, Effect: e})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Method.ID < out[j].Method.ID })
	return out
}
