package ipa_test

import (
	"reflect"
	"testing"

	"jrs/internal/analysis/ipa"
	"jrs/internal/bytecode"
	"jrs/internal/minijava"
	"jrs/internal/vm"
)

// load compiles MiniJava source and runs it through the loader so
// pools are resolved, ids assigned, and vtables built — the Analyze
// precondition.
func load(t *testing.T, src string) []*bytecode.Class {
	t.Helper()
	classes, err := minijava.Compile("test.mj", src)
	if err != nil {
		t.Fatal(err)
	}
	v := vm.New(nil, nil)
	if err := v.Load(classes); err != nil {
		t.Fatal(err)
	}
	return classes
}

func method(t *testing.T, classes []*bytecode.Class, cls, name string) *bytecode.Method {
	t.Helper()
	for _, c := range classes {
		if c.Name != cls {
			continue
		}
		for _, m := range c.Methods {
			if m.Name == name {
				return m
			}
		}
	}
	t.Fatalf("method %s.%s not found", cls, name)
	return nil
}

const hierarchySrc = `
class Animal {
	int speak() { return 1; }
	int legs() { return 4; }
}
class Dog extends Animal {
	int speak() { return 2; }
}
class Cat extends Animal {
	int speak() { return 3; }
}
class Bird extends Animal {
	// never instantiated: RTA must not count it as a target
	int speak() { return 9; }
}
class Main {
	static Animal pick(int n) {
		if (n > 0) { return new Dog(); }
		return new Cat();
	}
	static void main() {
		Animal a = pick(1);
		Sys.printi(a.speak());
		Sys.printi(a.legs());
		Dog d = new Dog();
		Sys.printi(d.speak());
	}
}`

func TestCallGraphDevirt(t *testing.T) {
	classes := load(t, hierarchySrc)
	r := ipa.Analyze(classes)

	for _, name := range []string{"Dog", "Cat"} {
		found := false
		for c := range r.Instantiated {
			if c.Name == name {
				found = true
			}
		}
		if !found {
			t.Errorf("%s should be instantiated", name)
		}
	}
	for c := range r.Instantiated {
		if c.Name == "Bird" {
			t.Error("Bird is never allocated; RTA must exclude it")
		}
	}

	main := method(t, classes, "Main", "main")
	var speakTargets, legsTargets, dogSpeak []*bytecode.Method
	for pc, ins := range main.Code {
		if ins.Op != bytecode.InvokeVirtual {
			continue
		}
		callee := main.Class.Pool.Methods[ins.A].Resolved
		ts := r.Targets[ipa.Site{Method: main.ID, PC: pc}]
		switch {
		case callee.Name == "legs":
			legsTargets = ts
		case callee.Name == "speak" && speakTargets == nil:
			speakTargets = ts
		case callee.Name == "speak":
			dogSpeak = ts
		}
	}
	// a.speak(): Dog and Cat are instantiated, Bird is not -> 2 targets,
	// stays polymorphic (the receiver merges two allocations).
	if len(speakTargets) != 2 {
		t.Errorf("a.speak() targets = %d, want 2", len(speakTargets))
	}
	// a.legs(): only Animal defines it -> CHA singleton, devirtualized.
	if len(legsTargets) != 1 {
		t.Fatalf("a.legs() targets = %d, want 1", len(legsTargets))
	}
	// d.speak(): exact receiver type Dog -> devirtualized to Dog.speak
	// even though the CHA set for Animal.speak has two members.
	if len(dogSpeak) != 1 || dogSpeak[0].Class.Name != "Dog" {
		t.Errorf("d.speak() targets = %v, want the Dog override", dogSpeak)
	}

	found := map[string]bool{}
	for _, f := range r.SortedDevirt() {
		found[f.Target.FullName()] = true
	}
	if !found["Animal.legs()I"] {
		t.Error("CHA-singleton site Animal.legs not devirtualized")
	}
	if !found["Dog.speak()I"] {
		t.Error("exact-type site Dog.speak not devirtualized")
	}
}

const escapeSrc = `
class Counter {
	int n;
	sync void inc() { n = n + 1; }
	sync int get() { return n; }
}
class Box {
	static Counter shared;
}
class Main {
	static Counter leak() {
		Counter c = new Counter();
		c.inc();
		return c;
	}
	static void main() {
		Counter local = new Counter();
		local.inc();
		Sys.printi(local.get());

		Counter stored = new Counter();
		Box.shared = stored;
		stored.inc();

		Counter ret = leak();
		ret.inc();
	}
}`

func TestEscapeElision(t *testing.T) {
	classes := load(t, escapeSrc)
	r := ipa.Analyze(classes)

	elided := map[string]int{}
	for _, f := range r.SortedElideCalls() {
		elided[f.Caller.FullName()]++
	}
	// main: local.inc() and local.get() are elidable; stored.* and
	// ret.* are not (stored into a static / loaded from a return).
	if elided["Main.main()V"] != 2 {
		t.Errorf("main elidable sync sites = %d, want 2 (local.inc, local.get): %v",
			elided["Main.main()V"], r.SortedElideCalls())
	}
	// leak(): its Counter is returned, so c.inc() must NOT be elided.
	if elided["Main.leak()Counter"] != 0 {
		t.Errorf("leak()'s returned Counter wrongly treated as thread-local")
	}

	// Escape census: three Counter allocations, exactly one local.
	locals, escaped := 0, 0
	for site, cls := range r.AllocClass {
		if cls == nil || cls.Name != "Counter" {
			continue
		}
		if r.Escaped[site] {
			escaped++
		} else {
			locals++
		}
	}
	if locals != 1 || escaped != 2 {
		t.Errorf("Counter allocs local=%d escaped=%d, want 1/2", locals, escaped)
	}
}

const spawnSrc = `
class Job {
	int done;
	sync void finish() { done = 1; }
	void run() { this.finish(); }
}
class Main {
	static void main() {
		Job j = new Job();
		int t = Sys.spawn(j);
		Sys.join(t);
		j.finish();
	}
}`

func TestSpawnEscapesAndRunRoot(t *testing.T) {
	classes := load(t, spawnSrc)
	r := ipa.Analyze(classes)

	run := method(t, classes, "Job", "run")
	if !r.Reachable[run] {
		t.Fatal("run()V of a spawned class must be call-graph reachable")
	}
	// The spawned Job is shared with another thread: nothing elidable.
	if n := len(r.ElideCalls); n != 0 {
		t.Errorf("spawned object's sync calls must not be elided, got %d: %v",
			n, r.SortedElideCalls())
	}
	if e := r.Effects[method(t, classes, "Main", "main")]; e&ipa.EffThread == 0 {
		t.Errorf("main effects = %v, want thread bit", e)
	}
}

// monitorClasses hand-assembles a program with monitorenter/monitorexit
// (MiniJava's workload dialect never emits them directly): one method
// locks a fresh object (elidable), the other locks the same object
// after publishing it to a static (not elidable).
func monitorClasses(t *testing.T) []*bytecode.Class {
	t.Helper()
	sigV, err := bytecode.ParseSignature("()V")
	if err != nil {
		t.Fatal(err)
	}
	c := &bytecode.Class{Name: "M", Statics: []bytecode.Field{{Name: "s", Type: bytecode.TRef}}}
	pool := func() *bytecode.Pool { return &c.Pool }
	selfRef := pool().AddClass("M")
	fieldRef := pool().AddField("M", "s")

	local := &bytecode.Method{Name: "local", Sig: sigV, Flags: bytecode.FlagStatic,
		MaxLocals: 1, Code: []bytecode.Instr{
			{Op: bytecode.New, A: selfRef},
			{Op: bytecode.Dup},
			{Op: bytecode.AStore, A: 0},
			{Op: bytecode.MonitorEnter},
			{Op: bytecode.ALoad, A: 0},
			{Op: bytecode.MonitorExit},
			{Op: bytecode.Return},
		}}
	published := &bytecode.Method{Name: "published", Sig: sigV, Flags: bytecode.FlagStatic,
		MaxLocals: 1, Code: []bytecode.Instr{
			{Op: bytecode.New, A: selfRef},
			{Op: bytecode.Dup},
			{Op: bytecode.AStore, A: 0},
			{Op: bytecode.PutStatic, A: fieldRef},
			{Op: bytecode.ALoad, A: 0},
			{Op: bytecode.MonitorEnter},
			{Op: bytecode.ALoad, A: 0},
			{Op: bytecode.MonitorExit},
			{Op: bytecode.Return},
		}}
	main := &bytecode.Method{Name: "main", Sig: sigV, Flags: bytecode.FlagStatic,
		MaxLocals: 1, Code: []bytecode.Instr{
			{Op: bytecode.InvokeStatic, A: pool().AddMethod("M", "local", "()V")},
			{Op: bytecode.InvokeStatic, A: pool().AddMethod("M", "published", "()V")},
			{Op: bytecode.Return},
		}}
	c.Methods = []*bytecode.Method{local, published, main}
	for _, m := range c.Methods {
		m.Class = c
	}
	return []*bytecode.Class{c}
}

func TestMonitorElision(t *testing.T) {
	classes := monitorClasses(t)
	v := vm.New(nil, nil)
	if err := v.Load(classes); err != nil {
		t.Fatal(err)
	}
	r := ipa.Analyze(classes)

	local := method(t, classes, "M", "local")
	published := method(t, classes, "M", "published")
	if !r.ElideMonitors[local] {
		t.Error("local(): monitors on a fresh unescaping object must be elidable")
	}
	if r.ElideMonitors[published] {
		t.Error("published(): object stored to a static, elision unsound")
	}
}

func TestEffects(t *testing.T) {
	classes := load(t, escapeSrc)
	r := ipa.Analyze(classes)

	get := method(t, classes, "Counter", "get")
	if e := r.Effects[get]; e&ipa.EffLock == 0 || e&ipa.EffReadHeap == 0 {
		t.Errorf("sync get() effects = %v, want lock+read", e)
	}
	if e := r.Effects[get]; e.Pure() {
		t.Errorf("synchronized method cannot be pure, got %v", e)
	}
	main := method(t, classes, "Main", "main")
	if e := r.Effects[main]; e&ipa.EffIO == 0 || e&ipa.EffAlloc == 0 || e&ipa.EffWriteHeap == 0 {
		t.Errorf("main effects = %v, want IO+alloc+write", e)
	}
	if got, want := r.Effects[main].String(), "RWALI-"; got != want {
		t.Errorf("main effect string = %q, want %q", got, want)
	}
}

func TestAnalyzeDeterministic(t *testing.T) {
	for i := 0; i < 3; i++ {
		a := ipa.Analyze(load(t, hierarchySrc))
		b := ipa.Analyze(load(t, hierarchySrc))
		if !reflect.DeepEqual(a.Summarize(), b.Summarize()) {
			t.Fatalf("summaries differ:\n%+v\n%+v", a.Summarize(), b.Summarize())
		}
		fa, fb := a.SortedDevirt(), b.SortedDevirt()
		if len(fa) != len(fb) {
			t.Fatalf("devirt fact counts differ: %d vs %d", len(fa), len(fb))
		}
		for j := range fa {
			if fa[j].PC != fb[j].PC || fa[j].Target.FullName() != fb[j].Target.FullName() {
				t.Fatalf("devirt fact %d differs: %+v vs %+v", j, fa[j], fb[j])
			}
		}
	}
}
