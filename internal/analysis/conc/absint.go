package conc

import (
	"sort"

	"jrs/internal/analysis"
	"jrs/internal/bytecode"
)

// The per-method abstract interpreter, a sibling of ipa's: each stack
// slot and local holds a small set of symbolic sources plus an unknown
// bit. Where ipa only needs Null/Param/Alloc, race detection also needs
// to name heap loads (so receivers loaded from fields can be resolved
// through a points-to map), call results (resolved through return
// summaries), and — crucially — thread ids: Sys.spawn returns an int
// that flows through *int* locals into Sys.join, and the MHP analysis
// can only kill a pending-spawn bit when the joined id provably names
// one spawn site. So unlike ipa, ILoad/IStore track locals too.

const (
	cNull uint8 = iota
	cParam
	cAlloc
	// cTid is the int thread-id produced by Sys.spawn at pc a.
	cTid
	// cField/cStatic name a heap load via the pool field index a.
	cField
	cStatic
	// cElem is a reference loaded from some array element.
	cElem
	// cCall is the reference returned by the call at pc a.
	cCall
)

type member struct {
	kind uint8
	a    int32
}

func memberLess(x, y member) bool {
	if x.kind != y.kind {
		return x.kind < y.kind
	}
	return x.a < y.a
}

// absVal is a set of possible sources plus the unknown bit; members is
// sorted and deduplicated.
type absVal struct {
	unknown bool
	members []member
}

var top = absVal{unknown: true}

func val(kind uint8, a int32) absVal {
	return absVal{members: []member{{kind: kind, a: a}}}
}

// singleTid reports the spawn pc when the value is exactly one thread
// id and nothing else.
func (v absVal) singleTid() (int, bool) {
	if !v.unknown && len(v.members) == 1 && v.members[0].kind == cTid {
		return int(v.members[0].a), true
	}
	return 0, false
}

func joinVal(a, b absVal) absVal {
	if equalVal(a, b) {
		return a
	}
	out := absVal{unknown: a.unknown || b.unknown}
	out.members = append(append([]member(nil), a.members...), b.members...)
	sort.Slice(out.members, func(i, j int) bool { return memberLess(out.members[i], out.members[j]) })
	w := 0
	for i, m := range out.members {
		if i == 0 || m != out.members[w-1] {
			out.members[w] = m
			w++
		}
	}
	out.members = out.members[:w]
	return out
}

func equalVal(a, b absVal) bool {
	if a.unknown != b.unknown || len(a.members) != len(b.members) {
		return false
	}
	for i := range a.members {
		if a.members[i] != b.members[i] {
			return false
		}
	}
	return true
}

// callFact records one call site's resolution and abstract arguments
// (receiver first for instance calls).
type callFact struct {
	pc      int
	callee  *bytecode.Method
	virtual bool
	sys     bool
	args    []absVal
}

// accessFact is one field/static/array access the census may report.
type accessFact struct {
	pc     int
	op     bytecode.Op
	write  bool
	static bool
	array  bool
	// elem is the array element kind (KindInt..KindChar) for array
	// accesses; fieldIdx indexes the class pool for field/static ones.
	elem     int
	fieldIdx int32
	// recv is the receiver value (field/array accesses only).
	recv absVal
}

// storeFact records a reference stored into the heap, feeding the
// points-to maps.
type storeFact struct {
	// kind: 0 field, 1 static, 2 array element.
	kind     uint8
	fieldIdx int32
	val      absVal
}

// methodFacts is everything the conc solvers need from one body.
type methodFacts struct {
	m        *bytecode.Method
	accesses []accessFact
	accIdx   map[int]int
	stores   []storeFact
	calls    []callFact
	callIdx  map[int]int
	monOps   map[int]absVal // monitorenter/exit pc -> operand
	spawnAt  map[int]absVal // Sys.spawn pc -> argument (the Runnable)
	joinAt   map[int]absVal // Sys.join pc -> argument (the tid)
	rets     absVal         // joined AReturn operands (ref-returning methods)
	// noFlow marks bodies the CFG or interpreter could not process;
	// such methods degrade to "no information" everywhere.
	noFlow bool
}

// collectFacts runs the abstract interpreter, builds CFGs and the
// per-pc loop membership for every analyzable method.
func (a *analyzer) collectFacts() {
	for _, m := range a.methods {
		f := a.interpret(m)
		a.facts[m.ID] = f
		g, err := analysis.BuildCFG(m)
		if err != nil {
			f.noFlow = true
			continue
		}
		a.graphs[m.ID] = g
		a.inLoop[m.ID] = loopMembership(g)
	}
}

// loopMembership marks each pc whose block lies on a CFG cycle
// (block reaches itself through at least one edge).
func loopMembership(g *analysis.Graph) []bool {
	n := len(g.Blocks)
	// reach[i][j] via simple transitive closure; method bodies are small.
	reach := make([][]bool, n)
	for i, b := range g.Blocks {
		reach[i] = make([]bool, n)
		for _, s := range b.Succs {
			reach[i][s] = true
		}
	}
	for k := 0; k < n; k++ {
		for i := 0; i < n; i++ {
			if !reach[i][k] {
				continue
			}
			for j := 0; j < n; j++ {
				if reach[k][j] {
					reach[i][j] = true
				}
			}
		}
	}
	out := make([]bool, len(g.M.Code))
	for i, b := range g.Blocks {
		if reach[i][i] {
			for pc := b.Start; pc < b.End; pc++ {
				out[pc] = true
			}
		}
	}
	return out
}

type absState struct {
	stack  []absVal
	locals []absVal
}

func (s absState) clone() absState {
	return absState{
		stack:  append([]absVal(nil), s.stack...),
		locals: append([]absVal(nil), s.locals...),
	}
}

func mergeInto(dst *absState, src absState) bool {
	changed := false
	for i := range dst.stack {
		if j := joinVal(dst.stack[i], src.stack[i]); !equalVal(j, dst.stack[i]) {
			dst.stack[i] = j
			changed = true
		}
	}
	for i := range dst.locals {
		if j := joinVal(dst.locals[i], src.locals[i]); !equalVal(j, dst.locals[i]) {
			dst.locals[i] = j
			changed = true
		}
	}
	return changed
}

func (a *analyzer) interpret(m *bytecode.Method) (f *methodFacts) {
	f = &methodFacts{
		m:       m,
		accIdx:  map[int]int{},
		callIdx: map[int]int{},
		monOps:  map[int]absVal{},
		spawnAt: map[int]absVal{},
		joinAt:  map[int]absVal{},
	}
	// Unverified bodies (lint runs conc over arbitrary input) can
	// underflow the abstract stack; degrade instead of crashing.
	defer func() {
		if recover() != nil {
			*f = methodFacts{
				m: m, accIdx: map[int]int{}, callIdx: map[int]int{},
				monOps: map[int]absVal{}, spawnAt: map[int]absVal{},
				joinAt: map[int]absVal{}, noFlow: true,
			}
		}
	}()

	entry := absState{locals: make([]absVal, m.MaxLocals)}
	for i := range entry.locals {
		entry.locals[i] = top
	}
	for i := 0; i < m.NumArgs() && i < len(entry.locals); i++ {
		entry.locals[i] = val(cParam, int32(i))
	}

	in := map[int]*absState{0: &entry}
	work := []int{0}
	queued := map[int]bool{0: true}
	for len(work) > 0 {
		pc := work[len(work)-1]
		work = work[:len(work)-1]
		queued[pc] = false
		st := in[pc].clone()
		for _, s := range a.step(m, f, pc, &st) {
			if s < 0 || s >= len(m.Code) {
				continue
			}
			if prev, ok := in[s]; !ok {
				cp := st.clone()
				in[s] = &cp
			} else if !mergeInto(prev, st) {
				continue
			}
			if !queued[s] {
				queued[s] = true
				work = append(work, s)
			}
		}
	}

	sort.SliceStable(f.calls, func(i, j int) bool { return f.calls[i].pc < f.calls[j].pc })
	for i := range f.calls {
		f.callIdx[f.calls[i].pc] = i
	}
	sort.SliceStable(f.accesses, func(i, j int) bool { return f.accesses[i].pc < f.accesses[j].pc })
	for i := range f.accesses {
		f.accIdx[f.accesses[i].pc] = i
	}
	return f
}

// access joins an access fact in place on revisits (like call sites),
// so the recorded receiver covers every path.
func (f *methodFacts) access(af accessFact) {
	if i, ok := f.accIdx[af.pc]; ok {
		f.accesses[i].recv = joinVal(f.accesses[i].recv, af.recv)
		return
	}
	f.accIdx[af.pc] = len(f.accesses)
	f.accesses = append(f.accesses, af)
}

// step applies one instruction, records facts, and returns successors.
func (a *analyzer) step(m *bytecode.Method, f *methodFacts, pc int, st *absState) []int {
	ins := m.Code[pc]
	push := func(v absVal) { st.stack = append(st.stack, v) }
	pop := func() absVal {
		v := st.stack[len(st.stack)-1]
		st.stack = st.stack[:len(st.stack)-1]
		return v
	}
	popN := func(n int) []absVal {
		vs := append([]absVal(nil), st.stack[len(st.stack)-n:]...)
		st.stack = st.stack[:len(st.stack)-n]
		return vs
	}
	next := []int{pc + 1}

	switch op := ins.Op; {
	case op == bytecode.Nop:
	case op == bytecode.IInc:
		st.locals[ins.A] = top
	case op == bytecode.IConst || op == bytecode.FConst || op == bytecode.SConst:
		push(top)
	case op == bytecode.AConstNull:
		push(val(cNull, 0))
	case op == bytecode.ILoad || op == bytecode.FLoad || op == bytecode.ALoad:
		push(st.locals[ins.A])
	case op == bytecode.IStore || op == bytecode.FStore || op == bytecode.AStore:
		st.locals[ins.A] = pop()
	case op == bytecode.Pop:
		pop()
	case op == bytecode.Dup:
		push(st.stack[len(st.stack)-1])
	case op == bytecode.Swap:
		n := len(st.stack)
		st.stack[n-1], st.stack[n-2] = st.stack[n-2], st.stack[n-1]
	case op >= bytecode.IAdd && op <= bytecode.IUshr && op != bytecode.INeg:
		popN(2)
		push(top)
	case op == bytecode.INeg || op == bytecode.FNeg || op == bytecode.I2F || op == bytecode.F2I:
		pop()
		push(top)
	case op == bytecode.FAdd || op == bytecode.FSub || op == bytecode.FMul ||
		op == bytecode.FDiv || op == bytecode.FCmp:
		popN(2)
		push(top)
	case op == bytecode.New:
		push(val(cAlloc, int32(pc)))
	case op == bytecode.NewArray:
		pop()
		push(val(cAlloc, int32(pc)))
	case op == bytecode.ArrayLength:
		pop()
		push(top)
	case op == bytecode.IALoad || op == bytecode.FALoad || op == bytecode.AALoad ||
		op == bytecode.CALoad:
		recv := st.stack[len(st.stack)-2]
		f.access(accessFact{pc: pc, op: op, array: true, elem: loadKind(op), recv: recv})
		popN(2)
		if op == bytecode.AALoad {
			push(val(cElem, 0))
		} else {
			push(top)
		}
	case op == bytecode.IAStore || op == bytecode.FAStore || op == bytecode.AAStore ||
		op == bytecode.CAStore:
		recv := st.stack[len(st.stack)-3]
		f.access(accessFact{pc: pc, op: op, write: true, array: true, elem: storeKind(op), recv: recv})
		if op == bytecode.AAStore {
			f.stores = append(f.stores, storeFact{kind: 2, val: st.stack[len(st.stack)-1]})
		}
		popN(3)
	case op == bytecode.Goto:
		return []int{int(ins.A)}
	case op == bytecode.IfEq || op == bytecode.IfNe || op == bytecode.IfLt ||
		op == bytecode.IfGe || op == bytecode.IfGt || op == bytecode.IfLe ||
		op == bytecode.IfNull || op == bytecode.IfNonNull:
		pop()
		return []int{pc + 1, int(ins.A)}
	case op >= bytecode.IfICmpEq && op <= bytecode.IfACmpNe:
		popN(2)
		return []int{pc + 1, int(ins.A)}
	case op == bytecode.GetField:
		recv := pop()
		f.access(accessFact{pc: pc, op: op, fieldIdx: ins.A, recv: recv})
		if fieldType(m, ins.A) == bytecode.TRef {
			push(val(cField, ins.A))
		} else {
			push(top)
		}
	case op == bytecode.PutField:
		recv := st.stack[len(st.stack)-2]
		f.access(accessFact{pc: pc, op: op, write: true, fieldIdx: ins.A, recv: recv})
		if fieldType(m, ins.A) == bytecode.TRef {
			f.stores = append(f.stores, storeFact{kind: 0, fieldIdx: ins.A, val: st.stack[len(st.stack)-1]})
		}
		popN(2)
	case op == bytecode.GetStatic:
		f.access(accessFact{pc: pc, op: op, static: true, fieldIdx: ins.A})
		if fieldType(m, ins.A) == bytecode.TRef {
			push(val(cStatic, ins.A))
		} else {
			push(top)
		}
	case op == bytecode.PutStatic:
		f.access(accessFact{pc: pc, op: op, write: true, static: true, fieldIdx: ins.A})
		v := pop()
		if fieldType(m, ins.A) == bytecode.TRef {
			f.stores = append(f.stores, storeFact{kind: 1, fieldIdx: ins.A, val: v})
		}
	case op.IsInvoke():
		callee := m.Class.Pool.Methods[ins.A].Resolved
		if callee == nil {
			// Unresolvable call in unverified input: give up on this body.
			panic("unresolved callee")
		}
		args := popN(callee.NumArgs())
		cf := callFact{
			pc:      pc,
			callee:  callee,
			virtual: op == bytecode.InvokeVirtual,
			sys:     callee.Class.Name == "Sys",
			args:    args,
		}
		if cf.sys {
			switch callee.Name {
			case "spawn":
				if len(args) > 0 {
					if prev, ok := f.spawnAt[pc]; ok {
						f.spawnAt[pc] = joinVal(prev, args[0])
					} else {
						f.spawnAt[pc] = args[0]
					}
				}
			case "join":
				if len(args) > 0 {
					if prev, ok := f.joinAt[pc]; ok {
						f.joinAt[pc] = joinVal(prev, args[0])
					} else {
						f.joinAt[pc] = args[0]
					}
				}
			}
		}
		if i, ok := f.callIdx[pc]; ok {
			for j := range cf.args {
				f.calls[i].args[j] = joinVal(f.calls[i].args[j], cf.args[j])
			}
		} else {
			f.callIdx[pc] = len(f.calls)
			f.calls = append(f.calls, cf)
		}
		if callee.Sig.Ret != bytecode.TVoid {
			switch {
			case cf.sys && callee.Name == "spawn":
				push(val(cTid, int32(pc)))
			case callee.Sig.Ret == bytecode.TRef && !cf.sys:
				push(val(cCall, int32(pc)))
			default:
				push(top)
			}
		}
	case op == bytecode.Return:
		return nil
	case op == bytecode.IReturn || op == bytecode.FReturn:
		pop()
		return nil
	case op == bytecode.AReturn:
		f.rets = joinVal(f.rets, pop())
		return nil
	case op == bytecode.MonitorEnter || op == bytecode.MonitorExit:
		v := pop()
		if prev, ok := f.monOps[pc]; ok {
			f.monOps[pc] = joinVal(prev, v)
		} else {
			f.monOps[pc] = v
		}
	}
	return next
}

func loadKind(op bytecode.Op) int {
	switch op {
	case bytecode.IALoad:
		return bytecode.KindInt
	case bytecode.FALoad:
		return bytecode.KindFloat
	case bytecode.AALoad:
		return bytecode.KindRef
	default:
		return bytecode.KindChar
	}
}

func storeKind(op bytecode.Op) int {
	switch op {
	case bytecode.IAStore:
		return bytecode.KindInt
	case bytecode.FAStore:
		return bytecode.KindFloat
	case bytecode.AAStore:
		return bytecode.KindRef
	default:
		return bytecode.KindChar
	}
}

// fieldType returns the declared type of the field named by pool index
// idx in m's class pool.
func fieldType(m *bytecode.Method, idx int32) bytecode.Type {
	fr := &m.Class.Pool.Fields[idx]
	if fr.Resolved == nil {
		return bytecode.TInt
	}
	return fr.Resolved.Type
}
