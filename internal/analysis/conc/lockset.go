package conc

import (
	"fmt"
	"sort"

	"jrs/internal/analysis"
	"jrs/internal/analysis/ipa"
	"jrs/internal/bytecode"
)

// Must-lockset analysis. A lock symbol names a runtime monitor the
// analysis can prove unique: a class object (always one per class) or
// an allocation site that executes at most once (allocated by the
// run-once main outside any loop). The intraprocedural layer is a
// symbolic monitor-stack dataflow via analysis.Solve, mirroring the
// monitor-balance pass; the interprocedural layer intersects held
// locks over all call edges within one context (must-hold), rooted at
// the thread entries with the empty set.

type lockSym struct {
	// kind: 0 = unique allocation site, 1 = class object.
	kind  uint8
	site  ipa.Site
	class string
}

func lockSymLess(x, y lockSym) bool {
	if x.kind != y.kind {
		return x.kind < y.kind
	}
	if x.kind == 1 {
		return x.class < y.class
	}
	if x.site.Method != y.site.Method {
		return x.site.Method < y.site.Method
	}
	return x.site.PC < y.site.PC
}

// lockName renders a symbol for reports.
func (a *analyzer) lockName(s lockSym) string {
	if s.kind == 1 {
		return "class:" + s.class
	}
	m := a.byID[s.site.Method]
	name := "?"
	if m != nil {
		name = m.FullName()
	}
	return fmt.Sprintf("alloc:%s@%d", name, s.site.PC)
}

// lockSet is a sorted set of lock symbols; top is the must-analysis ⊤
// (uninitialized: intersecting with anything yields the other side).
type lockSet struct {
	top  bool
	syms []lockSym
}

var lockTop = lockSet{top: true}

func lockUnion(a, b lockSet) lockSet {
	// top never participates in unions (callers strip it first).
	out := lockSet{}
	out.syms = append(append([]lockSym(nil), a.syms...), b.syms...)
	sort.Slice(out.syms, func(i, j int) bool { return lockSymLess(out.syms[i], out.syms[j]) })
	w := 0
	for i, s := range out.syms {
		if i == 0 || s != out.syms[w-1] {
			out.syms[w] = s
			w++
		}
	}
	out.syms = out.syms[:w]
	return out
}

func lockIntersect(a, b lockSet) lockSet {
	if a.top {
		return b
	}
	if b.top {
		return a
	}
	out := lockSet{}
	i, j := 0, 0
	for i < len(a.syms) && j < len(b.syms) {
		switch {
		case a.syms[i] == b.syms[j]:
			out.syms = append(out.syms, a.syms[i])
			i++
			j++
		case lockSymLess(a.syms[i], b.syms[j]):
			i++
		default:
			j++
		}
	}
	return out
}

func lockEqual(a, b lockSet) bool {
	if a.top != b.top || len(a.syms) != len(b.syms) {
		return false
	}
	for i := range a.syms {
		if a.syms[i] != b.syms[i] {
			return false
		}
	}
	return true
}

func lockDisjoint(a, b lockSet) bool {
	got := lockIntersect(notTop(a), notTop(b))
	return len(got.syms) == 0
}

// notTop degrades an unresolved entry set to the empty set: claiming
// no locks is the sound direction for race detection.
func notTop(s lockSet) lockSet {
	if s.top {
		return lockSet{}
	}
	return s
}

// uniqueSite reports whether the allocation site executes at most once
// per program run: it sits in a run-once main root, outside any loop.
func (a *analyzer) uniqueSite(s ipa.Site) bool {
	m := a.byID[s.Method]
	if m == nil {
		return false
	}
	return a.mainRoots[m.ID] && !a.calledFrom[m.ID] &&
		a.ownersExactly(m.ID, 0) && !a.siteInLoop(m.ID, s.PC)
}

// resolveLockVal maps a monitor operand to its unique lock symbol, or
// none when the operand is not provably one unique object.
func (a *analyzer) resolveLockVal(ctx int, m *bytecode.Method, v absVal) []lockSym {
	s := a.globalize(ctx, m, v)
	if s.unknown || len(s.sites) != 1 {
		return nil
	}
	site := s.sites[0]
	if !a.uniqueSite(site) {
		return nil
	}
	return []lockSym{{kind: 0, site: site}}
}

// syncSyms returns the lock a synchronized method holds for its whole
// body under one context.
func (a *analyzer) syncSyms(ctx int, m *bytecode.Method) []lockSym {
	if !m.IsSynchronized() {
		return nil
	}
	if m.IsStatic() {
		return []lockSym{{kind: 1, class: m.Class.Name}}
	}
	return a.resolveLockVal(ctx, m, val(cParam, 0))
}

// ---------------------------------------------------------------------
// Intraprocedural monitor-stack flow.

// lockStack is the symbolic monitor stack: the pcs of the MonitorEnter
// instructions whose locks are currently held (-1 for merged/unknown).
type lockStack struct {
	pcs []int
}

type lockFlow struct{}

func (lockFlow) Entry(*analysis.Graph) lockStack { return lockStack{} }

func (lockFlow) Transfer(g *analysis.Graph, b *analysis.Block, in lockStack) (lockStack, error) {
	pcs := append([]int(nil), in.pcs...)
	for pc := b.Start; pc < b.End; pc++ {
		switch g.M.Code[pc].Op {
		case bytecode.MonitorEnter:
			pcs = append(pcs, pc)
		case bytecode.MonitorExit:
			if len(pcs) == 0 {
				return lockStack{}, fmt.Errorf("%s @%d: monitor underflow", g.M.FullName(), pc)
			}
			pcs = pcs[:len(pcs)-1]
		}
	}
	return lockStack{pcs: pcs}, nil
}

func (lockFlow) Join(g *analysis.Graph, b *analysis.Block, have, incoming lockStack) (lockStack, bool, error) {
	if len(have.pcs) != len(incoming.pcs) {
		return lockStack{}, false, fmt.Errorf("%s: monitor depth mismatch at block %d", g.M.FullName(), b.Index)
	}
	changed := false
	out := append([]int(nil), have.pcs...)
	for i := range out {
		if out[i] != incoming.pcs[i] && out[i] != -1 {
			out[i] = -1
			changed = true
		}
	}
	return lockStack{pcs: out}, changed, nil
}

// solveLocks runs the intraprocedural stacks and the interprocedural
// entry-lock intersection fixpoint.
func (a *analyzer) solveLocks() {
	for _, m := range a.methods {
		g := a.graphs[m.ID]
		f := a.facts[m.ID]
		if g == nil || f.noFlow {
			continue
		}
		entries, err := analysis.Solve[lockStack](g, lockFlow{})
		if err != nil {
			continue
		}
		per := make([][]int, len(m.Code))
		bad := false
		for bi, b := range g.Blocks {
			if !g.Reachable(bi) {
				continue
			}
			cur := entries[bi].pcs
			for pc := b.Start; pc < b.End; pc++ {
				per[pc] = cur
				switch m.Code[pc].Op {
				case bytecode.MonitorEnter:
					cur = append(append([]int(nil), cur...), pc)
				case bytecode.MonitorExit:
					if len(cur) == 0 {
						bad = true
					} else {
						cur = cur[:len(cur)-1]
					}
				}
			}
		}
		if !bad {
			a.lockStacks[m.ID] = per
		}
	}

	// Entry locks: roots hold nothing; every other (ctx, method)
	// instance starts at ⊤ and intersects the held sets over all
	// in-context call edges.
	for _, m := range a.methods {
		for _, ctx := range a.ownersOf(m.ID) {
			key := ctxMethod{ctx, m.ID}
			if a.isRootInstance(ctx, m) {
				a.entryLocks[key] = lockSet{}
			} else {
				a.entryLocks[key] = lockTop
			}
		}
	}
	for {
		changed := false
		for _, m := range a.methods {
			f := a.facts[m.ID]
			for _, ctx := range a.ownersOf(m.ID) {
				cur := a.entryLocks[ctxMethod{ctx, m.ID}]
				if cur.top {
					continue
				}
				base := lockUnion(cur, lockSet{syms: a.syncSyms(ctx, m)})
				for i := range f.calls {
					cf := &f.calls[i]
					if cf.sys {
						continue
					}
					held := lockUnion(base, a.intraSyms(ctx, m, cf.pc))
					for _, t := range a.targetsAt(m, cf) {
						tk := ctxMethod{ctx, t.ID}
						if _, ok := a.entryLocks[tk]; !ok {
							continue
						}
						nv := lockIntersect(a.entryLocks[tk], held)
						if !lockEqual(nv, a.entryLocks[tk]) {
							a.entryLocks[tk] = nv
							changed = true
						}
					}
				}
			}
		}
		if !changed {
			break
		}
	}
}

// isRootInstance reports whether (ctx, m) is an entry the scheduler
// invokes directly: a main root in the main context, or a run() entry
// of the context's thread.
func (a *analyzer) isRootInstance(ctx int, m *bytecode.Method) bool {
	if ctx == 0 {
		return a.mainRoots[m.ID]
	}
	if !a.runMethods[m.ID] {
		return false
	}
	t := a.threads[ctx-1]
	for c := range t.recvClasses {
		if rm := runOf(c); rm != nil && rm.ID == m.ID {
			return true
		}
	}
	return false
}

// intraSyms resolves the locks held at pc by enclosing MonitorEnters
// within the same body.
func (a *analyzer) intraSyms(ctx int, m *bytecode.Method, pc int) lockSet {
	per := a.lockStacks[m.ID]
	if per == nil || pc >= len(per) {
		return lockSet{}
	}
	f := a.facts[m.ID]
	out := lockSet{}
	for _, epc := range per[pc] {
		if epc < 0 {
			continue
		}
		if v, ok := f.monOps[epc]; ok {
			out = lockUnion(out, lockSet{syms: a.resolveLockVal(ctx, m, v)})
		}
	}
	return out
}

// locksAt is the full must-lockset of an access instance.
func (a *analyzer) locksAt(ctx int, m *bytecode.Method, pc int) lockSet {
	base := notTop(a.entryLocks[ctxMethod{ctx, m.ID}])
	base = lockUnion(base, lockSet{syms: a.syncSyms(ctx, m)})
	return lockUnion(base, a.intraSyms(ctx, m, pc))
}

// lockNames renders a lock set for reports. An empty set renders as nil
// so reports survive a JSON round trip (omitempty drops empty sets).
func (a *analyzer) lockNames(s lockSet) []string {
	if len(s.syms) == 0 {
		return nil
	}
	out := make([]string, 0, len(s.syms))
	for _, sym := range s.syms {
		out = append(out, a.lockName(sym))
	}
	sort.Strings(out)
	return out
}
