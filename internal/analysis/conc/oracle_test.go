package conc

import (
	"testing"

	"jrs/internal/bytecode"
)

// allocObj registers one heap object of class cls at base (two header
// words, like vm.AllocObject's layout).
func allocObj(o *Oracle, base uint64, cls *bytecode.Class) (body uint64) {
	body = base + 16
	end := body + uint64(len(cls.AllFields))*8
	o.OnAlloc(base, body, end, cls, 0)
	return body
}

func classC() *bytecode.Class {
	return &bytecode.Class{Name: "C", AllFields: []bytecode.Field{{Name: "x"}, {Name: "y"}}}
}

// TestOracleUnorderedAccessesRace: two threads touching one field with
// no happens-before edge is a race, reported once per abstract location
// no matter how often it re-fires.
func TestOracleUnorderedAccessesRace(t *testing.T) {
	o := NewOracle()
	body := allocObj(o, 0x1000, classC())

	o.SetThread(1)
	o.OnAccess(body, true)
	o.SetThread(2)
	o.OnAccess(body, false)
	o.OnAccess(body, true)
	o.SetThread(1)
	o.OnAccess(body, true)

	races := o.Races()
	if len(races) != 1 {
		t.Fatalf("races = %v, want exactly 1 (deduplicated per location)", races)
	}
	d := races[0]
	if d.Location() != "C.x" || d.Kind != "field" {
		t.Errorf("race = %+v, want field C.x", d)
	}
	if d.Addr != body {
		t.Errorf("race addr = %#x, want %#x", d.Addr, body)
	}
}

// TestOracleLockOrdering: release→acquire edges order critical sections,
// so lock-protected sharing is race-free; dropping the edge revives the
// race.
func TestOracleLockOrdering(t *testing.T) {
	o := NewOracle()
	c := classC()
	body := allocObj(o, 0x1000, c)
	const lock = 0x9000

	o.SetThread(1)
	o.OnAcquire(1, lock)
	o.OnAccess(body, true)
	o.OnRelease(1, lock)

	o.SetThread(2)
	o.OnAcquire(2, lock)
	o.OnAccess(body, true)
	o.OnRelease(2, lock)

	if races := o.Races(); len(races) != 0 {
		t.Fatalf("locked accesses raced: %v", races)
	}

	// A third thread skipping the lock races with thread 2's write.
	o.SetThread(3)
	o.OnAccess(body, false)
	if races := o.Races(); len(races) != 1 || races[0].Location() != "C.x" {
		t.Fatalf("unlocked read should race: %v", races)
	}
}

// TestOracleSpawnJoinEdges: a spawn orders the parent's past before the
// child; a join (after exit) orders the child's whole execution before
// the waiter's continuation.
func TestOracleSpawnJoinEdges(t *testing.T) {
	o := NewOracle()
	body := allocObj(o, 0x1000, classC())

	o.SetThread(1)
	o.OnAccess(body, true) // parent init write
	o.OnSpawn(1, 2)

	o.SetThread(2)
	o.OnAccess(body, true) // child sees the init via the spawn edge
	o.OnThreadExit(2)

	o.SetThread(1)
	o.OnJoined(1, 2)
	o.OnAccess(body, false) // waiter sees the child's write via the join

	if races := o.Races(); len(races) != 0 {
		t.Fatalf("spawn/join ordered accesses raced: %v", races)
	}
}

// TestOracleJoinWithoutExitNoEdge: joining a thread whose final clock
// was never snapshotted (no OnThreadExit) must not invent an ordering.
func TestOracleJoinWithoutExitNoEdge(t *testing.T) {
	o := NewOracle()
	body := allocObj(o, 0x1000, classC())

	o.SetThread(2)
	o.OnAccess(body, true)
	o.SetThread(1)
	o.OnJoined(1, 2) // no final clock recorded
	o.OnAccess(body, false)

	if races := o.Races(); len(races) != 1 {
		t.Fatalf("races = %v, want 1 (join without exit is not an edge)", races)
	}
}

// TestOracleSkipsHeadersInternsAndThreadZero: header words, interned
// strings, unknown addresses and accesses outside any announced thread
// are not census material.
func TestOracleSkipsHeadersInternsAndThreadZero(t *testing.T) {
	o := NewOracle()
	c := classC()
	body := allocObj(o, 0x1000, c)
	o.OnAlloc(0x2000, 0x2018, 0x2020, nil, bytecode.KindChar)
	o.OnIntern(0x2000)

	// Thread 0 = VM-internal: ignored entirely.
	o.SetThread(0)
	o.OnAccess(body, true)

	o.SetThread(1)
	o.OnAccess(0x1000, true) // header word of the object
	o.OnAccess(0x2018, true) // interned string body
	o.OnAccess(0x7777, true) // no object at all
	o.SetThread(2)
	o.OnAccess(0x1000, true)
	o.OnAccess(0x2018, false)
	o.OnAccess(0x7777, false)

	if races := o.Races(); len(races) != 0 {
		t.Fatalf("non-census addresses raced: %v", races)
	}
}

// TestOracleStaticAndArrayAttribution: statics attribute through the
// class static area (slot-indexed), arrays pool per element kind.
func TestOracleStaticAndArrayAttribution(t *testing.T) {
	o := NewOracle()
	sc := &bytecode.Class{Name: "G", Statics: []bytecode.Field{{Name: "a"}, {Name: "b"}},
		StaticBase: 0x500}
	o.OnClasses([]*bytecode.Class{sc})
	o.OnAlloc(0x1000, 0x1018, 0x1038, nil, bytecode.KindInt)

	o.SetThread(1)
	o.OnAccess(0x508, true)  // G.b
	o.OnAccess(0x1020, true) // int[] element 1
	o.SetThread(2)
	o.OnAccess(0x508, true)
	o.OnAccess(0x1020, false)
	o.OnAccess(0x1020, false) // second read must not re-report

	races := o.Races()
	if len(races) != 2 {
		t.Fatalf("races = %v, want static G.b and int[] elements", races)
	}
	locs := map[string]bool{}
	for _, d := range races {
		locs[d.Location()] = true
	}
	if !locs["G.b (static)"] || !locs["int[] elements"] {
		t.Errorf("race locations = %v, want G.b (static) and int[] elements", locs)
	}
}

// TestOracleFieldDeclaringClass: a slot inherited from a superclass is
// attributed to the declaring class, matching the static report's keys.
func TestOracleFieldDeclaringClass(t *testing.T) {
	super := &bytecode.Class{Name: "Base", AllFields: []bytecode.Field{{Name: "x"}}}
	sub := &bytecode.Class{Name: "Sub", Super: super,
		AllFields: []bytecode.Field{{Name: "x"}, {Name: "y"}}}
	o := NewOracle()
	body := allocObj(o, 0x1000, sub)

	o.SetThread(1)
	o.OnAccess(body, true) // slot 0: declared in Base
	o.OnAccess(body+8, true)
	o.SetThread(2)
	o.OnAccess(body, true)
	o.OnAccess(body+8, true)

	locs := map[string]bool{}
	for _, d := range o.Races() {
		locs[d.Location()] = true
	}
	if !locs["Base.x"] || !locs["Sub.y"] {
		t.Errorf("race locations = %v, want Base.x and Sub.y", locs)
	}
}

// TestSubsumes: the differential returns exactly the dynamic races the
// static report misses.
func TestSubsumes(t *testing.T) {
	static := &Report{Races: []Race{
		{Kind: "field", Class: "C", Field: "x"},
		{Kind: "array", Elem: "int"},
	}}
	dynamic := []DynRace{
		{Kind: "field", Class: "C", Field: "x"},
		{Kind: "array", Elem: "int"},
		{Kind: "static", Class: "G", Field: "a"},
	}
	missing := Subsumes(static, dynamic)
	if len(missing) != 1 || missing[0].Location() != "G.a (static)" {
		t.Errorf("missing = %v, want just G.a (static)", missing)
	}
	if got := Subsumes(static, nil); len(got) != 0 {
		t.Errorf("empty dynamic set: missing = %v, want none", got)
	}
}
