package conc

import (
	"fmt"
	"sort"

	"jrs/internal/bytecode"
)

// Oracle is the dynamic happens-before race detector (vm.RaceHook). It
// maintains FastTrack-style vector clocks — per thread, per lock, and
// final clocks of exited threads — with happens-before edges from
// monitor release→acquire, Sys.spawn, and Sys.join, plus per-address
// shadow words (last write epoch, last read epoch per thread). A pair
// of accesses to one address, at least one a write, unordered by
// happens-before, is a dynamic race. Races are recorded (never fatal)
// and attributed to the same abstract location keys the static report
// uses, so the harness can check the subsumption invariant:
// every dynamic race location must appear in conc.Analyze's report.
type Oracle struct {
	cur    int
	clocks map[int]vclock
	locks  map[uint64]vclock
	finals map[int]vclock
	shadow map[uint64]*shadowWord

	objs    []heapObj
	statics []staticRange

	races []DynRace
	seen  map[locKey]bool
}

// DynRace is one dynamically observed race, keyed like a static Race.
type DynRace struct {
	Kind  string `json:"kind"`
	Class string `json:"class,omitempty"`
	Field string `json:"field,omitempty"`
	Elem  string `json:"elem,omitempty"`
	// Addr is the concrete racing address; First and Second are the
	// thread ids of the unordered accesses (Second performed the later
	// one; Write reports whether it was a write).
	Addr   uint64 `json:"addr"`
	First  int    `json:"first"`
	Second int    `json:"second"`
	Write  bool   `json:"write"`
}

// Location renders the abstract location, matching Race.Location.
func (d DynRace) Location() string {
	if d.Kind == "array" {
		return d.Elem + "[] elements"
	}
	s := d.Class + "." + d.Field
	if d.Kind == "static" {
		s += " (static)"
	}
	return s
}

// String renders the dynamic race on one line.
func (d DynRace) String() string {
	return fmt.Sprintf("dynamic race on %s @0x%x: threads %d/%d", d.Location(), d.Addr, d.First, d.Second)
}

type vclock map[int]uint64

func (c vclock) copy() vclock {
	out := make(vclock, len(c))
	for k, v := range c {
		out[k] = v
	}
	return out
}

func (c vclock) joinFrom(o vclock) {
	for k, v := range o {
		if v > c[k] {
			c[k] = v
		}
	}
}

type shadowWord struct {
	writeT int
	writeC uint64
	reads  map[int]uint64
}

type heapObj struct {
	base, body, end uint64
	cls             *bytecode.Class
	kind            int
	intern          bool
}

type staticRange struct {
	base, end uint64
	cls       *bytecode.Class
}

// NewOracle returns an empty detector.
func NewOracle() *Oracle {
	return &Oracle{
		clocks: map[int]vclock{},
		locks:  map[uint64]vclock{},
		finals: map[int]vclock{},
		shadow: map[uint64]*shadowWord{},
		seen:   map[locKey]bool{},
	}
}

// Races returns the deduplicated dynamic races observed so far.
func (o *Oracle) Races() []DynRace { return o.races }

func (o *Oracle) clockOf(tid int) vclock {
	c := o.clocks[tid]
	if c == nil {
		c = vclock{tid: 1}
		o.clocks[tid] = c
	}
	return c
}

// SetThread switches the current thread (called at slice boundaries).
func (o *Oracle) SetThread(tid int) {
	o.cur = tid
	o.clockOf(tid)
}

// OnClasses records the static field areas for address attribution.
func (o *Oracle) OnClasses(classes []*bytecode.Class) {
	for _, c := range classes {
		if len(c.Statics) == 0 {
			continue
		}
		o.statics = append(o.statics, staticRange{
			base: c.StaticBase,
			end:  c.StaticBase + uint64(len(c.Statics))*8,
			cls:  c,
		})
	}
	sort.Slice(o.statics, func(i, j int) bool { return o.statics[i].base < o.statics[j].base })
}

// OnAlloc records a heap object; the bump allocator is monotonic so
// appends keep objs sorted by base.
func (o *Oracle) OnAlloc(base, body, end uint64, cls *bytecode.Class, kind int) {
	o.objs = append(o.objs, heapObj{base: base, body: body, end: end, cls: cls, kind: kind})
}

// OnIntern marks an interned string literal: loader-materialized,
// logically immutable, excluded from the census (reads via the print
// intrinsics would otherwise show up as cross-thread accesses).
func (o *Oracle) OnIntern(base uint64) {
	for i := len(o.objs) - 1; i >= 0; i-- {
		if o.objs[i].base == base {
			o.objs[i].intern = true
			return
		}
	}
}

// OnAcquire joins the lock's clock into the acquirer (release→acquire
// happens-before edge).
func (o *Oracle) OnAcquire(tid int, obj uint64) {
	if l := o.locks[obj]; l != nil {
		o.clockOf(tid).joinFrom(l)
	}
}

// OnRelease publishes the releaser's clock on the lock and advances it.
func (o *Oracle) OnRelease(tid int, obj uint64) {
	c := o.clockOf(tid)
	o.locks[obj] = c.copy()
	c[tid]++
}

// OnSpawn orders the parent's past before the child's start.
func (o *Oracle) OnSpawn(parent, child int) {
	p := o.clockOf(parent)
	c := p.copy()
	c[child] = c[child] + 1
	o.clocks[child] = c
	p[parent]++
}

// OnThreadExit snapshots the final clock joiners will inherit.
func (o *Oracle) OnThreadExit(tid int) {
	o.finals[tid] = o.clockOf(tid).copy()
}

// OnJoined orders the joined thread's whole execution before the
// waiter's continuation.
func (o *Oracle) OnJoined(waiter, done int) {
	if f := o.finals[done]; f != nil {
		o.clockOf(waiter).joinFrom(f)
	}
}

// OnAccess is wired as mem.Memory.Watch: every functional load/store
// of the simulated data space lands here.
func (o *Oracle) OnAccess(addr uint64, write bool) {
	t := o.cur
	if t == 0 {
		return // VM-internal phase (loading, precompile): no thread
	}
	key, ok := o.classify(addr)
	if !ok {
		return
	}
	c := o.clockOf(t)
	sh := o.shadow[addr]
	if sh == nil {
		sh = &shadowWord{reads: map[int]uint64{}}
		o.shadow[addr] = sh
	}
	hb := func(u int, uc uint64) bool { return u == t || uc <= c[u] }
	if write {
		if sh.writeT != 0 && !hb(sh.writeT, sh.writeC) {
			o.record(key, addr, sh.writeT, t, true)
		}
		for rt, rc := range sh.reads {
			if !hb(rt, rc) {
				o.record(key, addr, rt, t, true)
			}
		}
		sh.writeT, sh.writeC = t, c[t]
		sh.reads = map[int]uint64{}
	} else {
		if sh.writeT != 0 && !hb(sh.writeT, sh.writeC) {
			o.record(key, addr, sh.writeT, t, false)
		}
		sh.reads[t] = c[t]
	}
}

func (o *Oracle) record(key locKey, addr uint64, first, second int, write bool) {
	if o.seen[key] {
		return
	}
	o.seen[key] = true
	o.races = append(o.races, DynRace{
		Kind:   key.kind,
		Class:  key.class,
		Field:  key.field,
		Elem:   key.elem,
		Addr:   addr,
		First:  first,
		Second: second,
		Write:  write,
	})
}

// classify attributes an address to an abstract location; headers,
// interned strings, and non-heap non-static segments are not census
// material.
func (o *Oracle) classify(addr uint64) (locKey, bool) {
	// Heap: binary search for the covering object.
	if n := len(o.objs); n > 0 && addr >= o.objs[0].base && addr < o.objs[n-1].end {
		i := sort.Search(n, func(i int) bool { return o.objs[i].base > addr }) - 1
		if i >= 0 {
			obj := &o.objs[i]
			if addr >= obj.body && addr < obj.end && !obj.intern {
				if obj.cls != nil {
					slot := int((addr - obj.body) / 8)
					if slot < len(obj.cls.AllFields) {
						decl := declaringOf(obj.cls, slot)
						return locKey{
							kind:  "field",
							class: decl.Name,
							field: obj.cls.AllFields[slot].Name,
						}, true
					}
					return locKey{}, false
				}
				return locKey{kind: "array", elem: ElemName(obj.kind)}, true
			}
		}
		return locKey{}, false
	}
	// Statics.
	for i := range o.statics {
		r := &o.statics[i]
		if addr >= r.base && addr < r.end {
			slot := int((addr - r.base) / 8)
			return locKey{kind: "static", class: r.cls.Name, field: r.cls.Statics[slot].Name}, true
		}
	}
	return locKey{}, false
}

// Subsumes checks the differential invariant: every dynamic race
// location appears among the static races. It returns the dynamic
// races with no static counterpart.
func Subsumes(static *Report, dynamic []DynRace) []DynRace {
	keys := map[string]bool{}
	for i := range static.Races {
		keys[static.Races[i].Location()] = true
	}
	var missing []DynRace
	for _, d := range dynamic {
		if !keys[d.Location()] {
			missing = append(missing, d)
		}
	}
	return missing
}
