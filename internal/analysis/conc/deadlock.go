package conc

import (
	"sort"

	"jrs/internal/bytecode"
)

// Lock-order graph. An edge A -> B records that some context acquires
// unique lock B while provably holding unique lock A (nested
// MonitorEnter, synchronized-method entry under held locks, or a call
// into a synchronized method). A strongly connected component with two
// or more locks whose edges come from at least two distinct contexts
// (or one multi-instance thread) is a potential deadlock: two threads
// can each hold one lock of the cycle and want the next.

type lockEdge struct {
	from, to lockSym
	ctx      int
	mid      int
	pc       int
}

func (a *analyzer) collectEdges() []lockEdge {
	var edges []lockEdge
	emit := func(held lockSet, acq []lockSym, ctx int, m *bytecode.Method, pc int) {
		for _, h := range held.syms {
			for _, t := range acq {
				if h == t {
					continue // reentrant acquire, not an ordering edge
				}
				edges = append(edges, lockEdge{from: h, to: t, ctx: ctx, mid: m.ID, pc: pc})
			}
		}
	}
	for _, m := range a.methods {
		f := a.facts[m.ID]
		for _, ctx := range a.ownersOf(m.ID) {
			entry := notTop(a.entryLocks[ctxMethod{ctx, m.ID}])
			sync := a.syncSyms(ctx, m)
			// Synchronized entry acquires under the caller-held set.
			emit(entry, sync, ctx, m, 0)
			base := lockUnion(entry, lockSet{syms: sync})
			// Nested MonitorEnter.
			for _, pc := range sortedPCs(f.monOps) {
				if m.Code[pc].Op != bytecode.MonitorEnter {
					continue
				}
				held := lockUnion(base, a.intraSyms(ctx, m, pc))
				emit(held, a.resolveLockVal(ctx, m, f.monOps[pc]), ctx, m, pc)
			}
			// Calls into synchronized methods.
			for i := range f.calls {
				cf := &f.calls[i]
				if cf.sys {
					continue
				}
				held := lockUnion(base, a.intraSyms(ctx, m, cf.pc))
				if len(held.syms) == 0 {
					continue
				}
				for _, t := range a.targetsAt(m, cf) {
					if !t.IsSynchronized() {
						continue
					}
					var acq []lockSym
					if t.IsStatic() {
						acq = []lockSym{{kind: 1, class: t.Class.Name}}
					} else if len(cf.args) > 0 {
						acq = a.resolveLockVal(ctx, m, cf.args[0])
					}
					emit(held, acq, ctx, m, cf.pc)
				}
			}
		}
	}
	return edges
}

// deadlocks finds cross-context cycles and fills the report.
func (a *analyzer) deadlocks(report *Report) {
	edges := a.collectEdges()
	if len(edges) == 0 {
		return
	}

	// Index the lock symbols.
	var syms []lockSym
	idx := map[lockSym]int{}
	intern := func(s lockSym) int {
		if i, ok := idx[s]; ok {
			return i
		}
		idx[s] = len(syms)
		syms = append(syms, s)
		return len(syms) - 1
	}
	adj := map[int][]int{}
	for _, e := range edges {
		f, t := intern(e.from), intern(e.to)
		adj[f] = append(adj[f], t)
	}

	comp := scc(len(syms), adj)
	// Group symbols per component.
	groups := map[int][]int{}
	for v, c := range comp {
		groups[c] = append(groups[c], v)
	}
	cids := make([]int, 0, len(groups))
	for c, vs := range groups {
		if len(vs) >= 2 {
			cids = append(cids, c)
		}
	}
	sort.Ints(cids)

	for _, c := range cids {
		var cycleEdges []lockEdge
		ctxs := map[int]bool{}
		multi := false
		for _, e := range edges {
			if comp[idx[e.from]] == c && comp[idx[e.to]] == c {
				cycleEdges = append(cycleEdges, e)
				ctxs[e.ctx] = true
				if e.ctx > 0 && a.threads[e.ctx-1].multi {
					multi = true
				}
			}
		}
		// A cycle needs two parties: distinct contexts, or one thread
		// context with multiple dynamic instances.
		if len(ctxs) < 2 && !multi {
			continue
		}
		d := Deadlock{}
		for _, v := range groups[c] {
			d.Locks = append(d.Locks, a.lockName(syms[v]))
		}
		sort.Strings(d.Locks)
		seen := map[LockEdge]bool{}
		for _, e := range cycleEdges {
			le := LockEdge{
				From:   a.lockName(e.from),
				To:     a.lockName(e.to),
				Method: a.byID[e.mid].FullName(),
				PC:     e.pc,
				Thread: a.threadName(e.ctx),
			}
			if !seen[le] {
				seen[le] = true
				d.Edges = append(d.Edges, le)
			}
		}
		sort.Slice(d.Edges, func(i, j int) bool {
			x, y := d.Edges[i], d.Edges[j]
			if x.From != y.From {
				return x.From < y.From
			}
			if x.To != y.To {
				return x.To < y.To
			}
			if x.Method != y.Method {
				return x.Method < y.Method
			}
			if x.PC != y.PC {
				return x.PC < y.PC
			}
			return x.Thread < y.Thread
		})
		report.Deadlocks = append(report.Deadlocks, d)
	}
}

// scc is Tarjan's algorithm (iterative), returning a component id per
// vertex; ids are deterministic for a fixed graph.
func scc(n int, adj map[int][]int) []int {
	comp := make([]int, n)
	for i := range comp {
		comp[i] = -1
	}
	index := make([]int, n)
	low := make([]int, n)
	onStack := make([]bool, n)
	for i := range index {
		index[i] = -1
	}
	var stack []int
	next, ncomp := 0, 0

	type frame struct{ v, ei int }
	for root := 0; root < n; root++ {
		if index[root] != -1 {
			continue
		}
		work := []frame{{root, 0}}
		index[root], low[root] = next, next
		next++
		stack = append(stack, root)
		onStack[root] = true
		for len(work) > 0 {
			f := &work[len(work)-1]
			v := f.v
			if f.ei < len(adj[v]) {
				w := adj[v][f.ei]
				f.ei++
				if index[w] == -1 {
					index[w], low[w] = next, next
					next++
					stack = append(stack, w)
					onStack[w] = true
					work = append(work, frame{w, 0})
				} else if onStack[w] && index[w] < low[v] {
					low[v] = index[w]
				}
				continue
			}
			work = work[:len(work)-1]
			if len(work) > 0 {
				p := work[len(work)-1].v
				if low[v] < low[p] {
					low[p] = low[v]
				}
			}
			if low[v] == index[v] {
				for {
					w := stack[len(stack)-1]
					stack = stack[:len(stack)-1]
					onStack[w] = false
					comp[w] = ncomp
					if w == v {
						break
					}
				}
				ncomp++
			}
		}
	}
	return comp
}
