// Package conc implements whole-program static race and deadlock
// detection over a loaded class set, Chord-style, on top of the
// interprocedural facts from internal/analysis/ipa:
//
//   - a thread-structure analysis locates every Sys.spawn site on the
//     RTA call graph and derives the abstract threads of the program
//     (main plus one per spawn site), a per-method owner set (which
//     abstract threads may execute a method), and a may-happen-in-
//     parallel relation between statement instances via a forward
//     "pending spawns" dataflow (analysis.Solve) whose join kill models
//     Sys.join on a provably unique thread id;
//   - a flow-sensitive lockset dataflow (again analysis.Solve,
//     mirroring the monitor-balance pass) tracks the symbolic monitor
//     stack through MonitorEnter/MonitorExit and synchronized-method
//     entries, and an interprocedural intersection fixpoint propagates
//     must-held locks across call edges;
//   - a shared-access census collects every field, static and array
//     access whose receiver may be reachable from more than one thread
//     (escaped per ipa and reachable from a spawn argument or a static
//     root), and reports race pairs — two accesses, at least one write,
//     may-alias receivers, may-happen-in-parallel, disjoint must-lock
//     sets — plus a lock-order graph whose cross-thread cycles are
//     potential deadlocks.
//
// The report is deliberately an over-approximation: the companion
// dynamic vector-clock oracle (oracle.go) attached to the running VM
// must never observe a race the static report misses, which is the
// differential soundness check wired into the harness
// (FuzzStaticSubsumesDynamicRaces).
//
// Analyze requires classes that have been through vm.Load: pools
// resolved, global method ids assigned, vtables materialized.
package conc

import (
	"fmt"
	"sort"
	"strings"

	"jrs/internal/analysis"
	"jrs/internal/analysis/ipa"
	"jrs/internal/bytecode"
)

// Access is one side of a race pair: a concrete bytecode access plus
// the abstract thread executing it and the locks provably held.
type Access struct {
	Method string   `json:"method"`
	PC     int      `json:"pc"`
	Op     string   `json:"op"`
	Thread string   `json:"thread"`
	Locks  []string `json:"locks,omitempty"`
}

// Race is one reported data race, deduplicated per abstract location:
// the first (deterministic) witness pair of conflicting accesses.
type Race struct {
	// Kind is "field", "static" or "array".
	Kind  string `json:"kind"`
	Class string `json:"class,omitempty"`
	Field string `json:"field,omitempty"`
	// Elem is the element-kind name for array locations.
	Elem   string `json:"elem,omitempty"`
	First  Access `json:"first"`
	Second Access `json:"second"`
}

// Location renders the abstract location key.
func (r *Race) Location() string {
	if r.Kind == "array" {
		return r.Elem + "[] elements"
	}
	s := r.Class + "." + r.Field
	if r.Kind == "static" {
		s += " (static)"
	}
	return s
}

// String renders the race on one line.
func (r *Race) String() string {
	return fmt.Sprintf("race on %s: %s x %s", r.Location(), r.First, r.Second)
}

// String renders one access witness.
func (a Access) String() string {
	s := fmt.Sprintf("%s @%d %s [%s]", a.Method, a.PC, a.Op, a.Thread)
	if len(a.Locks) > 0 {
		s += " locks{" + strings.Join(a.Locks, ", ") + "}"
	}
	return s
}

// LockEdge is one lock-order edge: while holding From, the thread
// acquires To at (Method, PC).
type LockEdge struct {
	From   string `json:"from"`
	To     string `json:"to"`
	Method string `json:"method"`
	PC     int    `json:"pc"`
	Thread string `json:"thread"`
}

// Deadlock is one cross-thread cycle in the lock-order graph.
type Deadlock struct {
	// Locks is the sorted set of locks on the cycle.
	Locks []string `json:"locks"`
	// Edges are the lock-order edges forming the cycle.
	Edges []LockEdge `json:"edges"`
}

// String renders the deadlock cycle on one line.
func (d *Deadlock) String() string {
	parts := make([]string, len(d.Edges))
	for i, e := range d.Edges {
		parts[i] = fmt.Sprintf("%s -> %s (%s @%d [%s])", e.From, e.To, e.Method, e.PC, e.Thread)
	}
	return "deadlock cycle: " + strings.Join(parts, ", ")
}

// Summary is the census row surfaced by `jrs analyze`.
type Summary struct {
	// Threads counts abstract spawned threads (spawn sites); main is
	// not included.
	Threads int `json:"threads"`
	// SharedLocations counts distinct abstract locations with at least
	// one access whose receiver may be thread-shared.
	SharedLocations int `json:"sharedLocations"`
	Races           int `json:"races"`
	Deadlocks       int `json:"deadlocks"`
}

// Report is the full static concurrency report for one program.
type Report struct {
	// Spawns describes each abstract thread's spawn site.
	Spawns []string `json:"spawns,omitempty"`
	// SharedLocations counts distinct abstract locations with shared
	// accesses.
	SharedLocations int        `json:"sharedLocations"`
	Races           []Race     `json:"races,omitempty"`
	Deadlocks       []Deadlock `json:"deadlocks,omitempty"`

	racySites map[ipa.Site]bool
}

// Summarize folds the report into the analyze census row.
func (r *Report) Summarize() Summary {
	return Summary{
		Threads:         len(r.Spawns),
		SharedLocations: r.SharedLocations,
		Races:           len(r.Races),
		Deadlocks:       len(r.Deadlocks),
	}
}

// RacySites returns the allocation sites whose objects participate in
// some reported race (the union of both witnesses' receiver points-to
// sets). Lock elision consults this: an elision proof for a receiver
// that can race is discarded, so static optimization never widens a
// reported race window.
func (r *Report) RacySites() map[ipa.Site]bool { return r.racySites }

// Analyze runs the full static race/deadlock pipeline.
func Analyze(classes []*bytecode.Class, res *ipa.Result) *Report {
	a := newAnalyzer(classes, res)
	a.collectFacts()
	a.findThreads()
	a.solveContexts()
	a.solveShared()
	a.solvePending()
	a.solveLocks()
	report := &Report{racySites: map[ipa.Site]bool{}}
	for _, t := range a.threads {
		report.Spawns = append(report.Spawns, a.threadName(t.ctx))
	}
	a.census(report)
	a.deadlocks(report)
	return report
}

// ---------------------------------------------------------------------
// Analyzer state.

// ctx identifies an abstract thread: 0 is main, i >= 1 is the thread
// spawned at a.threads[i-1].
type ctxMethod struct {
	ctx int
	mid int
}

type threadInfo struct {
	ctx  int // index into contexts; threads[i].ctx == i+1
	site ipa.Site
	m    *bytecode.Method
	pc   int
	// multi marks threads whose spawn site may execute more than once
	// (site in a loop, or containing method not a run-once root).
	multi bool
	// conservative threads may-happen-in-parallel with everything:
	// their spawn structure is not analyzable from main.
	conservative bool
	// argSet is the points-to set of the spawn argument.
	argSet siteSet
	// recvClasses are the possible receiver classes (grown during the
	// context fixpoint), each contributing its run()V to the owners of
	// this thread's context.
	recvClasses map[*bytecode.Class]bool
}

type analyzer struct {
	classes []*bytecode.Class
	ipa     *ipa.Result

	// methods is every reachable non-Sys method with code, in class
	// list / declaration order (deterministic).
	methods []*bytecode.Method
	byID    map[int]*bytecode.Method
	facts   map[int]*methodFacts
	graphs  map[int]*analysis.Graph
	inLoop  map[int][]bool // per method, per pc: inside a CFG cycle
	// calledFrom marks methods with at least one incoming call edge
	// (used to decide whether a root really runs once).
	calledFrom map[int]bool

	threads    []*threadInfo
	threadBy   map[ipa.Site]int // spawn site -> thread index
	owners     map[int]map[int]bool
	mainRoots  map[int]bool
	runMethods map[int]bool // any class's run()V entry

	fieldPts  map[fieldKey]siteSet
	staticPts map[fieldKey]siteSet
	elemPts   siteSet
	paramPts  map[ctxMethod][]siteSet
	retPts    map[ctxMethod]siteSet

	shared map[ipa.Site]bool
	// sharedAll marks a degraded census: some spawn argument or static
	// store was unknown, so any escaped site counts as shared.
	sharedAll bool

	maySpawn  map[int]threadMask
	entryPend map[int]threadMask
	pendAt    map[int][]threadMask

	entryLocks map[ctxMethod]lockSet
	lockStacks map[int][][]int // per method, per pc: enter pcs held before pc (nil = no info)
}

func newAnalyzer(classes []*bytecode.Class, res *ipa.Result) *analyzer {
	a := &analyzer{
		classes:    classes,
		ipa:        res,
		byID:       map[int]*bytecode.Method{},
		facts:      map[int]*methodFacts{},
		graphs:     map[int]*analysis.Graph{},
		inLoop:     map[int][]bool{},
		calledFrom: map[int]bool{},
		threadBy:   map[ipa.Site]int{},
		owners:     map[int]map[int]bool{},
		mainRoots:  map[int]bool{},
		runMethods: map[int]bool{},
		fieldPts:   map[fieldKey]siteSet{},
		staticPts:  map[fieldKey]siteSet{},
		paramPts:   map[ctxMethod][]siteSet{},
		retPts:     map[ctxMethod]siteSet{},
		shared:     map[ipa.Site]bool{},
		maySpawn:   map[int]threadMask{},
		entryPend:  map[int]threadMask{},
		pendAt:     map[int][]threadMask{},
		entryLocks: map[ctxMethod]lockSet{},
		lockStacks: map[int][][]int{},
	}
	for _, c := range classes {
		for _, m := range c.Methods {
			if !res.Reachable[m] || m.Class.Name == "Sys" || len(m.Code) == 0 {
				continue
			}
			a.methods = append(a.methods, m)
			a.byID[m.ID] = m
			if m.IsStatic() && m.Name == "main" && len(m.Sig.Params) == 0 {
				a.mainRoots[m.ID] = true
			}
		}
		if rm := runOf(c); rm != nil {
			a.runMethods[rm.ID] = true
		}
	}
	return a
}

// runOf finds the run()V entry a spawned thread of class c executes.
func runOf(c *bytecode.Class) *bytecode.Method {
	for _, m := range c.VTable {
		if m.Name == "run" && len(m.Sig.Params) == 0 && m.Sig.Ret == bytecode.TVoid {
			return m
		}
	}
	return nil
}

// threadName renders a context for reports.
func (a *analyzer) threadName(ctx int) string {
	if ctx == 0 {
		return "main"
	}
	t := a.threads[ctx-1]
	return fmt.Sprintf("spawn@%s@%d", t.m.FullName(), t.pc)
}

// ownersOf returns the sorted contexts that may execute m.
func (a *analyzer) ownersOf(mid int) []int {
	set := a.owners[mid]
	out := make([]int, 0, len(set))
	for c := range set {
		out = append(out, c)
	}
	sort.Ints(out)
	return out
}

// targetsAt resolves the possible callees of one recorded call site,
// mirroring ipa's resolution (direct edge, or the CHA target set).
func (a *analyzer) targetsAt(m *bytecode.Method, cf *callFact) []*bytecode.Method {
	if cf.sys {
		return nil
	}
	if cf.virtual {
		return a.ipa.Targets[ipa.Site{Method: m.ID, PC: cf.pc}]
	}
	if cf.callee == nil {
		return nil
	}
	return []*bytecode.Method{cf.callee}
}
