package conc

import (
	"sort"

	"jrs/internal/analysis/ipa"
	"jrs/internal/bytecode"
)

// The context/points-to layer. Contexts are abstract threads: 0 for
// main, one per spawn site. A combined monotone fixpoint grows, until
// stable:
//
//   - owners[mid]: which contexts may execute a method (call edges
//     propagate the caller's contexts; a spawn site adds its thread's
//     context to the receiver classes' run()V);
//   - flow-insensitive points-to maps: per-(declaring class, slot)
//     field sets, per-static sets, one coarse array-element set, and
//     per-(ctx, method) parameter/return sets. Everything bottoms out
//     in ipa allocation sites, with an unknown bit that is never
//     dropped — the race census treats unknown receivers as
//     potentially shared, which keeps the static report a sound
//     over-approximation of anything the dynamic oracle can see.

// fieldKey names an abstract field location by its declaring class and
// slot, matching how the dynamic oracle attributes a heap address.
type fieldKey struct {
	class  string
	slot   int
	static bool
}

// siteSet is a set of allocation sites plus an unknown bit; sites is
// sorted.
type siteSet struct {
	unknown bool
	sites   []ipa.Site
}

func siteLess(a, b ipa.Site) bool {
	if a.Method != b.Method {
		return a.Method < b.Method
	}
	return a.PC < b.PC
}

func joinSites(a, b siteSet) siteSet {
	if len(b.sites) == 0 && !b.unknown {
		return a
	}
	out := siteSet{unknown: a.unknown || b.unknown}
	out.sites = append(append([]ipa.Site(nil), a.sites...), b.sites...)
	sort.Slice(out.sites, func(i, j int) bool { return siteLess(out.sites[i], out.sites[j]) })
	w := 0
	for i, s := range out.sites {
		if i == 0 || s != out.sites[w-1] {
			out.sites[w] = s
			w++
		}
	}
	out.sites = out.sites[:w]
	return out
}

func equalSites(a, b siteSet) bool {
	if a.unknown != b.unknown || len(a.sites) != len(b.sites) {
		return false
	}
	for i := range a.sites {
		if a.sites[i] != b.sites[i] {
			return false
		}
	}
	return true
}

// mayAlias reports whether two receiver sets can name the same object.
func mayAlias(a, b siteSet) bool {
	if a.unknown || b.unknown {
		return true
	}
	i, j := 0, 0
	for i < len(a.sites) && j < len(b.sites) {
		switch {
		case a.sites[i] == b.sites[j]:
			return true
		case siteLess(a.sites[i], b.sites[j]):
			i++
		default:
			j++
		}
	}
	return false
}

// declaringOf climbs from a class to the one that declared instance
// slot — the canonical owner both the static keys and the dynamic
// oracle's address attribution use.
func declaringOf(cl *bytecode.Class, slot int) *bytecode.Class {
	for cl.Super != nil && slot < len(cl.Super.AllFields) {
		cl = cl.Super
	}
	return cl
}

// fieldKeyOf resolves a pool field index to its abstract location. The
// loader's Owner is the *referenced* class for instance fields, so the
// key climbs to the declaring class (statics already resolve there).
func fieldKeyOf(m *bytecode.Method, idx int32) (fieldKey, bool) {
	fr := &m.Class.Pool.Fields[idx]
	if fr.Resolved == nil || fr.Owner == nil {
		return fieldKey{}, false
	}
	if fr.Static {
		return fieldKey{class: fr.Owner.Name, slot: fr.Resolved.Slot, static: true}, true
	}
	decl := declaringOf(fr.Owner, fr.Resolved.Slot)
	return fieldKey{class: decl.Name, slot: fr.Resolved.Slot}, true
}

// globalize lifts a per-method abstract value to a set of allocation
// sites under one context, resolving heap members through the global
// points-to maps and call results through return summaries.
func (a *analyzer) globalize(ctx int, m *bytecode.Method, v absVal) siteSet {
	out := siteSet{unknown: v.unknown}
	for _, mem := range v.members {
		switch mem.kind {
		case cNull, cTid:
		case cAlloc:
			out = joinSites(out, siteSet{sites: []ipa.Site{{Method: m.ID, PC: int(mem.a)}}})
		case cParam:
			pp := a.paramPts[ctxMethod{ctx, m.ID}]
			if int(mem.a) < len(pp) {
				out = joinSites(out, pp[mem.a])
			}
		case cField:
			if k, ok := fieldKeyOf(m, mem.a); ok {
				out = joinSites(out, a.fieldPts[k])
			} else {
				out.unknown = true
			}
		case cStatic:
			if k, ok := fieldKeyOf(m, mem.a); ok {
				out = joinSites(out, a.staticPts[k])
			} else {
				out.unknown = true
			}
		case cElem:
			out = joinSites(out, a.elemPts)
		case cCall:
			f := a.facts[m.ID]
			if i, ok := f.callIdx[int(mem.a)]; ok {
				cf := &f.calls[i]
				for _, t := range a.targetsAt(m, cf) {
					out = joinSites(out, a.retPts[ctxMethod{ctx, t.ID}])
				}
			} else {
				out.unknown = true
			}
		}
	}
	return out
}

// findThreads enumerates spawn sites in deterministic order.
func (a *analyzer) findThreads() {
	for _, m := range a.methods {
		f := a.facts[m.ID]
		pcs := make([]int, 0, len(f.spawnAt))
		for pc := range f.spawnAt {
			pcs = append(pcs, pc)
		}
		sort.Ints(pcs)
		for _, pc := range pcs {
			t := &threadInfo{
				ctx:         len(a.threads) + 1,
				site:        ipa.Site{Method: m.ID, PC: pc},
				m:           m,
				pc:          pc,
				recvClasses: map[*bytecode.Class]bool{},
			}
			a.threadBy[t.site] = len(a.threads)
			a.threads = append(a.threads, t)
		}
	}
}

func (a *analyzer) addOwner(mid, ctx int) bool {
	s := a.owners[mid]
	if s == nil {
		s = map[int]bool{}
		a.owners[mid] = s
	}
	if s[ctx] {
		return false
	}
	s[ctx] = true
	return true
}

func (a *analyzer) mergeParam(ctx, mid, i, n int, s siteSet) bool {
	key := ctxMethod{ctx, mid}
	pp := a.paramPts[key]
	for len(pp) < n {
		pp = append(pp, siteSet{})
	}
	j := joinSites(pp[i], s)
	changed := !equalSites(j, pp[i])
	pp[i] = j
	a.paramPts[key] = pp
	return changed
}

// solveContexts runs the combined owners + points-to fixpoint, then
// finalizes per-thread multiplicity flags.
func (a *analyzer) solveContexts() {
	for mid := range a.mainRoots {
		a.addOwner(mid, 0)
	}
	for a.sweep() {
	}

	for _, t := range a.threads {
		// exclusive main-root spawn: the site runs at most once (modulo
		// loops), in program order with main's joins — the only shape the
		// pending-spawn flow can reason about.
		exclusive := a.mainRoots[t.m.ID] && !a.calledFrom[t.m.ID] && a.ownersExactly(t.m.ID, 0)
		t.conservative = !exclusive
		t.multi = t.conservative || a.siteInLoop(t.m.ID, t.pc)
	}
}

func (a *analyzer) ownersExactly(mid, ctx int) bool {
	s := a.owners[mid]
	return len(s) == 1 && s[ctx]
}

func (a *analyzer) siteInLoop(mid, pc int) bool {
	l := a.inLoop[mid]
	if l == nil || pc >= len(l) {
		return true
	}
	return l[pc]
}

// sweep performs one monotone pass; reports change.
func (a *analyzer) sweep() bool {
	changed := false
	for _, m := range a.methods {
		f := a.facts[m.ID]
		for _, ctx := range a.ownersOf(m.ID) {
			// Call edges: owners and parameter sets flow to callees.
			for i := range f.calls {
				cf := &f.calls[i]
				for _, t := range a.targetsAt(m, cf) {
					if a.byID[t.ID] == nil {
						continue
					}
					if a.addOwner(t.ID, ctx) {
						changed = true
					}
					a.calledFrom[t.ID] = true
					for j, arg := range cf.args {
						if a.mergeParam(ctx, t.ID, j, len(cf.args), a.globalize(ctx, m, arg)) {
							changed = true
						}
					}
				}
			}
			// Heap stores feed the global points-to maps.
			for _, st := range f.stores {
				s := a.globalize(ctx, m, st.val)
				switch st.kind {
				case 0:
					if k, ok := fieldKeyOf(m, st.fieldIdx); ok {
						j := joinSites(a.fieldPts[k], s)
						if !equalSites(j, a.fieldPts[k]) {
							a.fieldPts[k] = j
							changed = true
						}
					}
				case 1:
					if k, ok := fieldKeyOf(m, st.fieldIdx); ok {
						j := joinSites(a.staticPts[k], s)
						if !equalSites(j, a.staticPts[k]) {
							a.staticPts[k] = j
							changed = true
						}
					}
				case 2:
					j := joinSites(a.elemPts, s)
					if !equalSites(j, a.elemPts) {
						a.elemPts = j
						changed = true
					}
				}
			}
			// Return summary.
			if f.rets.unknown || len(f.rets.members) > 0 {
				key := ctxMethod{ctx, m.ID}
				j := joinSites(a.retPts[key], a.globalize(ctx, m, f.rets))
				if !equalSites(j, a.retPts[key]) {
					a.retPts[key] = j
					changed = true
				}
			}
			// Spawn sites: grow the thread's receiver classes and root its
			// context at the run()V entries.
			pcs := make([]int, 0, len(f.spawnAt))
			for pc := range f.spawnAt {
				pcs = append(pcs, pc)
			}
			sort.Ints(pcs)
			for _, pc := range pcs {
				ti := a.threadBy[ipa.Site{Method: m.ID, PC: pc}]
				t := a.threads[ti]
				s := a.globalize(ctx, m, f.spawnAt[pc])
				if j := joinSites(t.argSet, s); !equalSites(j, t.argSet) {
					t.argSet = j
					changed = true
				}
				for _, c := range a.receiverClasses(s) {
					rm := runOf(c)
					if rm == nil || a.byID[rm.ID] == nil {
						continue
					}
					if !t.recvClasses[c] {
						t.recvClasses[c] = true
						changed = true
					}
					if a.addOwner(rm.ID, t.ctx) {
						changed = true
					}
					if a.mergeParam(t.ctx, rm.ID, 0, 1, s) {
						changed = true
					}
				}
			}
		}
	}
	return changed
}

// receiverClasses resolves a spawn argument set to candidate Runnable
// classes; an unknown argument means any instantiated class with run().
func (a *analyzer) receiverClasses(s siteSet) []*bytecode.Class {
	var out []*bytecode.Class
	if s.unknown {
		for _, c := range a.classes {
			if a.ipa.Instantiated[c] && runOf(c) != nil {
				out = append(out, c)
			}
		}
		return out
	}
	seen := map[*bytecode.Class]bool{}
	for _, site := range s.sites {
		c := a.ipa.AllocClass[site]
		if c != nil && !seen[c] {
			seen[c] = true
			out = append(out, c)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// solveShared computes the thread-shared allocation sites: everything
// reachable (through fields and array elements) from a spawn argument
// or a static root. This refines ipa.Escaped — an escaped-but-
// main-local object (e.g. one returned from a helper) cannot race.
func (a *analyzer) solveShared() {
	var queue []ipa.Site
	add := func(s siteSet) {
		if s.unknown {
			a.sharedAll = true
		}
		for _, site := range s.sites {
			if !a.shared[site] {
				a.shared[site] = true
				queue = append(queue, site)
			}
		}
	}
	for _, t := range a.threads {
		add(t.argSet)
	}
	keys := make([]fieldKey, 0, len(a.staticPts))
	for k := range a.staticPts {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return fieldKeyLess(keys[i], keys[j]) })
	for _, k := range keys {
		add(a.staticPts[k])
	}
	for len(queue) > 0 {
		site := queue[0]
		queue = queue[1:]
		c := a.ipa.AllocClass[site]
		if c == nil {
			// Array: anything ever stored into any array element.
			add(a.elemPts)
			continue
		}
		for cls := c; cls != nil; cls = cls.Super {
			for _, fld := range cls.Fields {
				if fld.Type != bytecode.TRef {
					continue
				}
				add(a.fieldPts[fieldKey{class: cls.Name, slot: fld.Slot}])
			}
		}
	}
}

func fieldKeyLess(x, y fieldKey) bool {
	if x.class != y.class {
		return x.class < y.class
	}
	if x.slot != y.slot {
		return x.slot < y.slot
	}
	return !x.static && y.static
}

// sharedRecv reports whether an access receiver may name a
// thread-shared object.
func (a *analyzer) sharedRecv(s siteSet) bool {
	if s.unknown {
		return true
	}
	for _, site := range s.sites {
		if a.shared[site] {
			return true
		}
		if a.sharedAll && a.ipa.Escaped[site] {
			return true
		}
	}
	return false
}
