package conc

import (
	"jrs/internal/analysis"
	"jrs/internal/analysis/ipa"
	"jrs/internal/bytecode"
	"sort"
)

// May-happen-in-parallel. The model: main executes the program in
// order; a Sys.spawn site makes its abstract thread *pending*; a
// Sys.join whose argument provably names one spawn site's id (and that
// site runs at most once) makes it non-pending again. A statement of
// main's may run in parallel with thread t iff t is pending there; two
// spawned threads may run in parallel iff either is pending at the
// other's spawn site. Threads whose spawn structure is not analyzable
// from a run-once main (conservative) parallel everything. The pending
// set is a forward dataflow (analysis.Solve) over each main-executed
// method, with call edges folding in callee may-spawn summaries and an
// interprocedural entry fixpoint.

// threadMask is a set of abstract thread indices (bit i = threads[i]);
// all subsumes every index (used past 64 threads — still sound).
type threadMask struct {
	all  bool
	bits uint64
}

func (m threadMask) has(i int) bool {
	return m.all || (i < 64 && m.bits&(1<<uint(i)) != 0)
}

func (m threadMask) set(i int) threadMask {
	if m.all {
		return m
	}
	if i >= 64 {
		return threadMask{all: true}
	}
	m.bits |= 1 << uint(i)
	return m
}

func (m threadMask) clear(i int) threadMask {
	if m.all || i >= 64 {
		return m
	}
	m.bits &^= 1 << uint(i)
	return m
}

func (m threadMask) union(o threadMask) threadMask {
	return threadMask{all: m.all || o.all, bits: m.bits | o.bits}
}

// pendFlow adapts the pending-spawn transfer to analysis.Solve.
type pendFlow struct {
	a *analyzer
	f *methodFacts
}

func (p pendFlow) Entry(g *analysis.Graph) threadMask {
	return p.a.entryPend[g.M.ID]
}

func (p pendFlow) Transfer(g *analysis.Graph, b *analysis.Block, in threadMask) (threadMask, error) {
	m := in
	for pc := b.Start; pc < b.End; pc++ {
		m = p.a.stepPend(p.f, pc, m)
	}
	return m, nil
}

func (p pendFlow) Join(_ *analysis.Graph, _ *analysis.Block, have, incoming threadMask) (threadMask, bool, error) {
	u := have.union(incoming)
	return u, u != have, nil
}

// stepPend applies one instruction to the pending set.
func (a *analyzer) stepPend(f *methodFacts, pc int, m threadMask) threadMask {
	if _, ok := f.spawnAt[pc]; ok {
		if ti, ok := a.threadBy[ipa.Site{Method: f.m.ID, PC: pc}]; ok {
			m = m.set(ti)
		}
	} else if i, ok := f.callIdx[pc]; ok {
		cf := &f.calls[i]
		if jv, isJoin := f.joinAt[pc]; isJoin {
			if spc, one := jv.singleTid(); one {
				if ti, ok := a.threadBy[ipa.Site{Method: f.m.ID, PC: spc}]; ok && !a.threads[ti].multi {
					m = m.clear(ti)
				}
			}
		} else if !cf.sys {
			for _, t := range a.targetsAt(f.m, cf) {
				m = m.union(a.maySpawn[t.ID])
			}
		}
	}
	return m
}

// solvePending computes may-spawn summaries, then the interprocedural
// pending-at-entry fixpoint over main-executed methods, materializing
// per-pc pending sets.
func (a *analyzer) solvePending() {
	// May-spawn summaries (transitive).
	for {
		changed := false
		for _, m := range a.methods {
			f := a.facts[m.ID]
			mask := a.maySpawn[m.ID]
			for pc := range f.spawnAt {
				if ti, ok := a.threadBy[ipa.Site{Method: m.ID, PC: pc}]; ok {
					mask = mask.set(ti)
				}
			}
			for i := range f.calls {
				for _, t := range a.targetsAt(m, &f.calls[i]) {
					mask = mask.union(a.maySpawn[t.ID])
				}
			}
			if mask != a.maySpawn[m.ID] {
				a.maySpawn[m.ID] = mask
				changed = true
			}
		}
		if !changed {
			break
		}
	}

	// Interprocedural pending fixpoint over main-owned methods.
	for {
		changed := false
		for _, m := range a.methods {
			if !a.owners[m.ID][0] {
				continue
			}
			f := a.facts[m.ID]
			per := a.solvePendMethod(m, f)
			a.pendAt[m.ID] = per
			if per == nil {
				continue
			}
			for i := range f.calls {
				cf := &f.calls[i]
				if cf.sys || cf.pc >= len(per) {
					continue
				}
				at := per[cf.pc]
				for _, t := range a.targetsAt(m, cf) {
					u := a.entryPend[t.ID].union(at)
					if u != a.entryPend[t.ID] {
						a.entryPend[t.ID] = u
						changed = true
					}
				}
			}
		}
		if !changed {
			break
		}
	}
}

// solvePendMethod returns the pending set before each pc, or nil when
// the body has no usable flow (treated as all-pending by pendingAt).
func (a *analyzer) solvePendMethod(m *bytecode.Method, f *methodFacts) []threadMask {
	g := a.graphs[m.ID]
	if g == nil || f.noFlow {
		return nil
	}
	entries, err := analysis.Solve[threadMask](g, pendFlow{a: a, f: f})
	if err != nil {
		return nil
	}
	per := make([]threadMask, len(m.Code))
	for bi, b := range g.Blocks {
		if !g.Reachable(bi) {
			continue
		}
		cur := entries[bi]
		for pc := b.Start; pc < b.End; pc++ {
			per[pc] = cur
			cur = a.stepPend(f, pc, cur)
		}
	}
	return per
}

// pendingAt returns main's pending set before (mid, pc), conservative
// when unknown.
func (a *analyzer) pendingAt(mid, pc int) threadMask {
	per := a.pendAt[mid]
	if per == nil || pc >= len(per) {
		return threadMask{all: true}
	}
	return per[pc]
}

// instRef locates one access instance: an abstract thread executing an
// instruction.
type instRef struct {
	ctx int
	mid int
	pc  int
}

// mhp decides whether two access instances may run in parallel.
func (a *analyzer) mhp(x, y instRef) bool {
	if x.ctx == 0 && y.ctx == 0 {
		return false
	}
	if x.ctx == y.ctx {
		// Same abstract thread: parallel only when the spawn site can
		// produce more than one dynamic thread.
		return a.threads[x.ctx-1].multi
	}
	if y.ctx == 0 {
		x, y = y, x
	}
	ty := a.threads[y.ctx-1]
	if x.ctx == 0 {
		if ty.conservative {
			return true
		}
		return a.pendingAt(x.mid, x.pc).has(y.ctx - 1)
	}
	tx := a.threads[x.ctx-1]
	if tx.conservative || ty.conservative {
		return true
	}
	return a.pendingAt(ty.site.Method, ty.site.PC).has(x.ctx-1) ||
		a.pendingAt(tx.site.Method, tx.site.PC).has(y.ctx-1)
}

// sortedPCs returns a map's pc keys in order (shared helper).
func sortedPCs[T any](m map[int]T) []int {
	out := make([]int, 0, len(m))
	for pc := range m {
		out = append(out, pc)
	}
	sort.Ints(out)
	return out
}
