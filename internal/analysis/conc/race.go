package conc

import (
	"sort"

	"jrs/internal/bytecode"
)

// The shared-access census and race pairing. An abstract location is a
// (declaring class, field) pair, a static field, or an array element
// kind (arrays are pooled per element kind — deliberately coarse, and
// exactly the granularity the dynamic oracle can mirror from a bare
// address). Two accesses race when at least one writes, the receivers
// may alias, the instances may happen in parallel, and their must-lock
// sets share no lock.

// locKey is the canonical abstract location.
type locKey struct {
	// kind: "field", "static", "array".
	kind  string
	class string
	field string
	elem  string
}

func locKeyLess(x, y locKey) bool {
	if x.kind != y.kind {
		return x.kind < y.kind
	}
	if x.class != y.class {
		return x.class < y.class
	}
	if x.field != y.field {
		return x.field < y.field
	}
	return x.elem < y.elem
}

// ElemName renders an array element kind.
func ElemName(kind int) string {
	switch kind {
	case bytecode.KindInt:
		return "int"
	case bytecode.KindFloat:
		return "float"
	case bytecode.KindRef:
		return "ref"
	default:
		return "char"
	}
}

// accessInst is one census entry: an access fact instantiated under a
// context, with its globalized receiver and lockset.
type accessInst struct {
	ref   instRef
	m     *bytecode.Method
	af    *accessFact
	recv  siteSet
	locks lockSet
}

// locOf maps an access fact to its abstract location.
func locOf(m *bytecode.Method, af *accessFact) (locKey, bool) {
	if af.array {
		return locKey{kind: "array", elem: ElemName(af.elem)}, true
	}
	fr := &m.Class.Pool.Fields[af.fieldIdx]
	if fr.Resolved == nil || fr.Owner == nil {
		return locKey{}, false
	}
	if af.static {
		return locKey{kind: "static", class: fr.Owner.Name, field: fr.Name}, true
	}
	decl := declaringOf(fr.Owner, fr.Resolved.Slot)
	return locKey{kind: "field", class: decl.Name, field: fr.Name}, true
}

// census builds the shared-access table and fills the report's races.
func (a *analyzer) census(report *Report) {
	perLoc := map[locKey][]accessInst{}
	for _, m := range a.methods {
		f := a.facts[m.ID]
		for _, ctx := range a.ownersOf(m.ID) {
			for i := range f.accesses {
				af := &f.accesses[i]
				inst := accessInst{
					ref: instRef{ctx: ctx, mid: m.ID, pc: af.pc},
					m:   m,
					af:  af,
				}
				if !af.static {
					inst.recv = a.globalize(ctx, m, af.recv)
					if !a.sharedRecv(inst.recv) {
						continue
					}
				}
				key, ok := locOf(m, af)
				if !ok {
					continue
				}
				inst.locks = a.locksAt(ctx, m, af.pc)
				perLoc[key] = append(perLoc[key], inst)
			}
		}
	}

	keys := make([]locKey, 0, len(perLoc))
	for k := range perLoc {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return locKeyLess(keys[i], keys[j]) })
	report.SharedLocations = len(keys)

	for _, key := range keys {
		insts := perLoc[key]
		// Already deterministic: methods order × sorted ctxs × pc order —
		// but make the invariant explicit.
		sort.SliceStable(insts, func(i, j int) bool {
			x, y := insts[i].ref, insts[j].ref
			if x.mid != y.mid {
				return x.mid < y.mid
			}
			if x.pc != y.pc {
				return x.pc < y.pc
			}
			return x.ctx < y.ctx
		})
		if race, ok := a.findPair(key, insts); ok {
			report.Races = append(report.Races, race)
			for _, inst := range insts {
				for _, s := range inst.recv.sites {
					report.racySites[s] = true
				}
			}
		}
	}
}

// findPair returns the first racing pair at one location.
func (a *analyzer) findPair(key locKey, insts []accessInst) (Race, bool) {
	for i := 0; i < len(insts); i++ {
		for j := i; j < len(insts); j++ {
			x, y := &insts[i], &insts[j]
			if !x.af.write && !y.af.write {
				continue
			}
			if !a.mhp(x.ref, y.ref) {
				continue
			}
			if key.kind != "static" && !mayAlias(x.recv, y.recv) {
				continue
			}
			if !lockDisjoint(x.locks, y.locks) {
				continue
			}
			return Race{
				Kind:   key.kind,
				Class:  key.class,
				Field:  key.field,
				Elem:   key.elem,
				First:  a.accessOf(x),
				Second: a.accessOf(y),
			}, true
		}
	}
	return Race{}, false
}

func (a *analyzer) accessOf(inst *accessInst) Access {
	return Access{
		Method: inst.m.FullName(),
		PC:     inst.af.pc,
		Op:     inst.af.op.String(),
		Thread: a.threadName(inst.ref.ctx),
		Locks:  a.lockNames(notTop(inst.locks)),
	}
}
