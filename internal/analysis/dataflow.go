package analysis

// Flow is a forward dataflow problem over a method's CFG. Facts of type
// F are treated as immutable values: Transfer and Join must return
// fresh facts (or unmodified inputs), never mutate their arguments —
// the solver aliases one out-fact across multiple successors.
type Flow[F any] interface {
	// Entry is the fact at method entry.
	Entry(g *Graph) F
	// Transfer propagates a fact through a whole block.
	Transfer(g *Graph, b *Block, in F) (F, error)
	// Join merges a new incoming fact into a successor's current fact,
	// reporting whether it changed. An error aborts the analysis (used
	// by must-agree joins: stack shape, monitor depth).
	Join(g *Graph, b *Block, have, incoming F) (merged F, changed bool, err error)
}

// Solve runs p to a fixed point with round-robin sweeps in reverse
// postorder (deterministic, and a single sweep settles loop-free code).
// It returns the entry fact of every reachable block; unreachable
// blocks keep F's zero value and are never transferred.
func Solve[F any](g *Graph, p Flow[F]) ([]F, error) {
	in := make([]F, len(g.Blocks))
	seeded := make([]bool, len(g.Blocks))
	if len(g.RPO) == 0 {
		return in, nil
	}
	entry := g.RPO[0]
	in[entry] = p.Entry(g)
	seeded[entry] = true

	for {
		changed := false
		for _, bi := range g.RPO {
			if !seeded[bi] {
				continue
			}
			b := g.Blocks[bi]
			out, err := p.Transfer(g, b, in[bi])
			if err != nil {
				return nil, err
			}
			for _, s := range b.Succs {
				if !seeded[s] {
					in[s] = out
					seeded[s] = true
					changed = true
					continue
				}
				merged, ch, err := p.Join(g, g.Blocks[s], in[s], out)
				if err != nil {
					return nil, err
				}
				if ch {
					in[s] = merged
					changed = true
				}
			}
		}
		if !changed {
			return in, nil
		}
	}
}
