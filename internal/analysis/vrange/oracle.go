package vrange

import (
	"fmt"
	"sort"
	"strings"

	"jrs/internal/bytecode"
	"jrs/internal/vm"
)

// Violation is one elided check that would have fired at runtime — a
// soundness bug in the static analysis (the subsumption invariant is
// that this never happens).
type Violation struct {
	Method string `json:"method"`
	PC     int    `json:"pc"`
	Kind   string `json:"kind"`
}

func (v Violation) String() string {
	return fmt.Sprintf("%s @%d (%s)", v.Method, v.PC, v.Kind)
}

// CheckOracle is the dynamic soundness oracle for check elision: a
// vm.CheckHook that re-validates every elided site as it executes
// (behind `jrs -checkelide run`). Validations counts dynamic
// re-checks — a run with zero validations proves nothing, which the
// non-vacuity tests guard against.
type CheckOracle struct {
	Validations uint64
	seen        map[Violation]bool
	list        []Violation
}

// NewOracle builds an empty oracle.
func NewOracle() *CheckOracle {
	return &CheckOracle{seen: map[Violation]bool{}}
}

// OnElidedCheck implements vm.CheckHook.
func (o *CheckOracle) OnElidedCheck(m *bytecode.Method, pc int, kind vm.CheckKind, ok bool) {
	o.Validations++
	if ok {
		return
	}
	v := Violation{Method: m.FullName(), PC: pc, Kind: kind.String()}
	if !o.seen[v] {
		o.seen[v] = true
		o.list = append(o.list, v)
	}
}

// Violations lists the distinct violated sites, sorted.
func (o *CheckOracle) Violations() []Violation {
	out := append([]Violation(nil), o.list...)
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Method != b.Method {
			return a.Method < b.Method
		}
		if a.PC != b.PC {
			return a.PC < b.PC
		}
		return a.Kind < b.Kind
	})
	return out
}

// Err folds the invariant into an error (nil when no elided check
// would have fired).
func (o *CheckOracle) Err() error {
	vs := o.Violations()
	if len(vs) == 0 {
		return nil
	}
	parts := make([]string, len(vs))
	for i, v := range vs {
		parts[i] = v.String()
	}
	return fmt.Errorf("elided check(s) would have fired: %s", strings.Join(parts, ", "))
}
