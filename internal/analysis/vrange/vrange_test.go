package vrange_test

import (
	"math"
	"testing"

	"jrs/internal/analysis/ipa"
	"jrs/internal/analysis/vrange"
	"jrs/internal/bytecode"
	"jrs/internal/minijava"
	"jrs/internal/vm"
)

func TestIntervalJoinMeetExtremes(t *testing.T) {
	full := vrange.Full()
	if !full.Contains(math.MinInt64) || !full.Contains(math.MaxInt64) {
		t.Error("Full must contain both int64 extremes")
	}
	lo := vrange.Point(math.MinInt64)
	hi := vrange.Point(math.MaxInt64)
	if j := lo.Join(hi); j != full {
		t.Errorf("Join of extremes = %+v, want Full", j)
	}
	if _, ok := lo.Meet(hi); ok {
		t.Error("Meet of disjoint extremes must be empty")
	}
	if m, ok := full.Meet(vrange.Range(-3, 7)); !ok || m != vrange.Range(-3, 7) {
		t.Errorf("Full meet [-3,7] = %+v ok=%v", m, ok)
	}
	// Join is a hull, never wraps.
	if j := vrange.Range(-10, -5).Join(vrange.Range(5, 10)); j != vrange.Range(-10, 10) {
		t.Errorf("hull join = %+v", j)
	}
}

// TestWideningTermination: any monotone chain of Widen steps changes
// the interval only a bounded number of times (Lo can step to 0 then
// MinInt64, Hi to MaxInt64), so loop-head iteration always terminates.
func TestWideningTermination(t *testing.T) {
	iv := vrange.Point(5)
	changes := 0
	for k := int64(0); k < 100; k++ {
		next := vrange.Range(5-k, 5+k*3)
		w := iv.Widen(next)
		if hull := iv.Join(next); !w.Contains(hull.Lo) || !w.Contains(hull.Hi) {
			t.Fatalf("Widen lost values: %+v widen %+v = %+v", iv, next, w)
		}
		if w != iv {
			changes++
		}
		iv = w
	}
	if changes > 4 {
		t.Errorf("widening chain changed %d times, want <= 4", changes)
	}
	if iv != vrange.Full() {
		t.Errorf("chain with sinking Lo and rising Hi must reach Full, got %+v", iv)
	}
	// The 0-threshold: a non-negative sinking bound pauses at 0 so index
	// lower bounds survive one widening step.
	if w := vrange.Point(8).Widen(vrange.Range(3, 8)); w != vrange.Range(0, 8) {
		t.Errorf("non-negative sink = %+v, want [0,8]", w)
	}
	if w := vrange.Range(0, 8).Widen(vrange.Range(-1, 8)); w != vrange.Range(math.MinInt64, 8) {
		t.Errorf("negative sink = %+v, want [MinInt64,8]", w)
	}
}

// TestIntervalOverflowSafety: arithmetic whose concrete counterpart
// wraps must widen to Full instead of keeping a wrapped (unsound) bound.
func TestIntervalOverflowSafety(t *testing.T) {
	max, min := vrange.Point(math.MaxInt64), vrange.Point(math.MinInt64)
	if r := max.Add(vrange.Point(1)); r != vrange.Full() {
		t.Errorf("MaxInt64+1 = %+v, want Full", r)
	}
	if r := min.Sub(vrange.Point(1)); r != vrange.Full() {
		t.Errorf("MinInt64-1 = %+v, want Full", r)
	}
	if r := max.Mul(vrange.Point(2)); r != vrange.Full() {
		t.Errorf("MaxInt64*2 = %+v, want Full", r)
	}
	if r := min.Neg(); r != vrange.Full() {
		t.Errorf("-MinInt64 = %+v, want Full", r)
	}
	// In-range arithmetic stays tight.
	if r := vrange.Range(-2, 3).Add(vrange.Range(10, 20)); r != vrange.Range(8, 23) {
		t.Errorf("[-2,3]+[10,20] = %+v", r)
	}
	if r := vrange.Range(-2, 3).Mul(vrange.Range(4, 5)); r != vrange.Range(-10, 15) {
		t.Errorf("[-2,3]*[4,5] = %+v", r)
	}
	if r := vrange.Range(1, 4).Sub(vrange.Range(0, 2)); r != vrange.Range(-1, 4) {
		t.Errorf("[1,4]-[0,2] = %+v", r)
	}
}

func TestNullnessJoin(t *testing.T) {
	cases := []struct{ a, b, want vrange.Nullness }{
		{vrange.NonNull, vrange.NonNull, vrange.NonNull},
		{vrange.IsNull, vrange.IsNull, vrange.IsNull},
		{vrange.NonNull, vrange.IsNull, vrange.MaybeNull},
		{vrange.NonNull, vrange.MaybeNull, vrange.MaybeNull},
		{vrange.MaybeNull, vrange.MaybeNull, vrange.MaybeNull},
	}
	for _, c := range cases {
		if got := vrange.JoinNull(c.a, c.b); got != c.want {
			t.Errorf("JoinNull(%v,%v) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

// analyzeSrc compiles a MiniJava source and runs the whole-program
// analysis over it, returning the result plus the loaded classes.
func analyzeSrc(t *testing.T, src string) (*vrange.Result, []*bytecode.Class) {
	t.Helper()
	classes, err := minijava.Compile("test.mj", src)
	if err != nil {
		t.Fatal(err)
	}
	v := vm.New(nil, nil)
	v.Verify = vm.VerifyStructural
	if err := v.Load(classes); err != nil {
		t.Fatal(err)
	}
	return vrange.Analyze(v.ClassList, ipa.Analyze(v.ClassList)), v.ClassList
}

// findMethod locates class.method in the loaded set.
func findMethod(t *testing.T, classes []*bytecode.Class, class, method string) *bytecode.Method {
	t.Helper()
	for _, c := range classes {
		if c.Name != class {
			continue
		}
		for _, m := range c.Methods {
			if m.Name == method {
				return m
			}
		}
	}
	t.Fatalf("method %s.%s not found", class, method)
	return nil
}

// TestNullnessThroughSyncBlock: monitorenter dereferences its operand,
// so inside a sync block the locked reference is non-null — field
// accesses there are proven while the monitorenter itself (on a
// maybe-null reference) is not.
func TestNullnessThroughSyncBlock(t *testing.T) {
	r, classes := analyzeSrc(t, `
class Box { int v; }
class Main {
	static Box pick(int n) {
		if (n > 0) { return new Box(); }
		return null;
	}
	static void main() {
		// Two call sites widen pick's argument summary to [0,1], so its
		// return joins both branches and b is genuinely maybe-null.
		Box drop = Main.pick(0);
		Box b = Main.pick(1);
		sync (b) {
			Sys.printi(b.v);
		}
	}
}`)
	m := findMethod(t, classes, "Main", "main")
	var enterPC, getPC = -1, -1
	for pc, ins := range m.Code {
		switch ins.Op {
		case bytecode.MonitorEnter:
			enterPC = pc
		case bytecode.GetField:
			getPC = pc
		}
	}
	if enterPC < 0 || getPC < 0 {
		t.Fatalf("fixture shape: monitorenter=%d getfield=%d", enterPC, getPC)
	}
	if r.NullProvenID(m.ID, enterPC) {
		t.Error("monitorenter on a maybe-null reference must keep its check")
	}
	if !r.NullProvenID(m.ID, getPC) {
		t.Error("getfield inside the sync block must be proven non-null (monitorenter dominates it)")
	}
}

// TestNullnessSpawnedRunRoot: a spawned run() is an analysis root whose
// receiver is non-null (spawn checks it), so `this` dereferences inside
// the thread body are proven even though no analyzed caller invokes it.
func TestNullnessSpawnedRunRoot(t *testing.T) {
	r, classes := analyzeSrc(t, `
class W {
	int[] data;
	W(int n) { data = new int[n]; }
	void run() {
		int s = 0;
		for (int i = 0; i < data.length; i = i + 1) {
			s = s + data[i];
		}
		Sys.printi(s);
	}
}
class Main {
	static void main() {
		int t = Sys.spawn(new W(8));
		Sys.join(t);
	}
}`)
	m := findMethod(t, classes, "W", "run")
	checked, proven := 0, 0
	for pc, ins := range m.Code {
		if ins.Op == bytecode.GetField {
			checked++
			if r.NullProvenID(m.ID, pc) {
				proven++
			}
		}
	}
	if checked == 0 {
		t.Fatal("fixture shape: no getfield in W.run")
	}
	if proven != checked {
		t.Errorf("spawned-root this-dereferences proven %d/%d, want all", proven, checked)
	}
}

// TestBoundsProofInterprocedural: an index bounded by a callee's
// argument-length summary is proven across the call.
func TestBoundsProofInterprocedural(t *testing.T) {
	r, classes := analyzeSrc(t, `
class Main {
	static int sum(int[] a) {
		int s = 0;
		for (int i = 0; i < a.length; i = i + 1) { s = s + a[i]; }
		return s;
	}
	static void main() {
		int[] xs = new int[12];
		Sys.printi(Main.sum(xs));
	}
}`)
	m := findMethod(t, classes, "Main", "sum")
	for pc, ins := range m.Code {
		if ins.Op == bytecode.IALoad && !r.BoundsProvenID(m.ID, pc) {
			t.Errorf("a[i] under i < a.length not proven at pc %d", pc)
		}
	}
	c := r.Summarize()
	if c.BoundsProven == 0 {
		t.Fatalf("census proved nothing: %+v", c)
	}
}
