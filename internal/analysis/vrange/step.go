package vrange

import (
	"math"

	"jrs/internal/analysis/ipa"
	"jrs/internal/bytecode"
)

// step executes the abstract transfer for the instruction at pc over
// st (a private clone the caller hands over) and returns the outgoing
// CFG edges with their refined states. An empty slice means the
// instruction never falls through (return, throw-only, or a branch
// whose both edges are refuted).
func (s *msolver) step(pc int, st *state) []edge {
	ins := s.m.Code[pc]
	fall := func() []edge { return []edge{{pc + 1, st}} }
	switch ins.Op {
	case bytecode.Nop:
		return fall()

	case bytecode.IConst:
		st.push(intVal(Point(int64(ins.A))))
		return fall()
	case bytecode.FConst:
		st.push(top())
		return fall()
	case bytecode.SConst:
		o := s.defRef(st, pc)
		s.noteLen(o, Range(0, math.MaxInt64))
		st.push(aval{iv: Full(), null: NonNull, orig: o, from: -1, eqLen: noOrigin})
		return fall()
	case bytecode.AConstNull:
		v := top()
		v.null = IsNull
		st.push(v)
		return fall()

	case bytecode.ILoad, bytecode.FLoad, bytecode.ALoad:
		l := int(ins.A)
		if l < 0 || l >= len(st.locals) {
			s.bailed = true
			return nil
		}
		v := st.locals[l]
		v.from = int16(l)
		st.push(v)
		return fall()
	case bytecode.IStore, bytecode.FStore, bytecode.AStore:
		v := s.pop(st)
		l := int(ins.A)
		if s.bailed || l < 0 || l >= len(st.locals) {
			s.bailed = true
			return nil
		}
		st.killFrom(l)
		v.from = -1
		st.locals[l] = v
		return fall()
	case bytecode.IInc:
		l := int(ins.A)
		if l < 0 || l >= len(st.locals) {
			s.bailed = true
			return nil
		}
		st.killFrom(l)
		v := st.locals[l]
		v.iv = v.iv.Add(Point(int64(ins.B)))
		v.eqLen, v.lt = noOrigin, nil
		st.locals[l] = v
		return fall()

	case bytecode.Pop:
		s.pop(st)
		return fall()
	case bytecode.Dup:
		if len(st.stack) == 0 {
			s.bailed = true
			return nil
		}
		st.push(st.stack[len(st.stack)-1])
		return fall()
	case bytecode.Swap:
		v2 := s.pop(st)
		v1 := s.pop(st)
		if s.bailed {
			return nil
		}
		st.push(v2)
		st.push(v1)
		return fall()

	case bytecode.IAdd, bytecode.ISub, bytecode.IMul, bytecode.IDiv, bytecode.IRem,
		bytecode.IAnd, bytecode.IOr, bytecode.IXor,
		bytecode.IShl, bytecode.IShr, bytecode.IUshr:
		b := s.pop(st)
		a := s.pop(st)
		if s.bailed {
			return nil
		}
		st.push(s.arith(ins.Op, a, b))
		return fall()
	case bytecode.INeg:
		a := s.pop(st)
		st.push(intVal(a.iv.Neg()))
		return fall()

	case bytecode.FAdd, bytecode.FSub, bytecode.FMul, bytecode.FDiv:
		s.pop(st)
		s.pop(st)
		st.push(top())
		return fall()
	case bytecode.FNeg:
		s.pop(st)
		st.push(top())
		return fall()
	case bytecode.FCmp:
		s.pop(st)
		s.pop(st)
		st.push(intVal(Range(-1, 1)))
		return fall()
	case bytecode.I2F:
		s.pop(st)
		st.push(top())
		return fall()
	case bytecode.F2I:
		s.pop(st)
		st.push(intVal(Full()))
		return fall()

	case bytecode.New:
		o := s.defRef(st, pc)
		st.push(aval{iv: Full(), null: NonNull, orig: o, from: -1, eqLen: noOrigin})
		return fall()
	case bytecode.NewArray:
		n := s.pop(st)
		if s.bailed {
			return nil
		}
		lenIv, ok := n.iv.Meet(Range(0, math.MaxInt64))
		if !ok {
			return nil // provably negative length: always throws
		}
		o := s.defRef(st, pc)
		s.noteLen(o, lenIv)
		st.push(aval{iv: Full(), null: NonNull, orig: o, from: -1, eqLen: noOrigin})
		return fall()
	case bytecode.ArrayLength:
		arr := s.pop(st)
		if s.bailed {
			return nil
		}
		if arr.null == IsNull {
			return nil // always throws
		}
		derefNonNull(st, arr)
		v := intVal(lenBound(s.lenOf, arr))
		v.eqLen = arr.orig
		st.push(v)
		return fall()

	case bytecode.IALoad, bytecode.FALoad, bytecode.AALoad, bytecode.CALoad:
		idx := s.pop(st)
		arr := s.pop(st)
		if s.bailed {
			return nil
		}
		if arr.null == IsNull {
			return nil
		}
		s.postAccess(st, arr, idx)
		switch ins.Op {
		case bytecode.CALoad:
			st.push(intVal(Range(0, 255)))
		case bytecode.IALoad:
			st.push(intVal(Full()))
		case bytecode.AALoad:
			o := s.defRef(st, pc)
			s.noteLen(o, Range(0, math.MaxInt64))
			st.push(aval{iv: Full(), null: MaybeNull, orig: o, from: -1, eqLen: noOrigin})
		default:
			st.push(top())
		}
		return fall()
	case bytecode.IAStore, bytecode.FAStore, bytecode.AAStore, bytecode.CAStore:
		s.pop(st)
		idx := s.pop(st)
		arr := s.pop(st)
		if s.bailed {
			return nil
		}
		if arr.null == IsNull {
			return nil
		}
		s.postAccess(st, arr, idx)
		return fall()

	case bytecode.GetField:
		obj := s.pop(st)
		if s.bailed {
			return nil
		}
		if obj.null == IsNull {
			return nil
		}
		derefNonNull(st, obj)
		st.push(s.fieldVal(st, pc, ins))
		return fall()
	case bytecode.PutField:
		s.pop(st)
		obj := s.pop(st)
		if s.bailed {
			return nil
		}
		if obj.null == IsNull {
			return nil
		}
		derefNonNull(st, obj)
		return fall()
	case bytecode.GetStatic:
		st.push(s.fieldVal(st, pc, ins))
		return fall()
	case bytecode.PutStatic:
		s.pop(st)
		return fall()

	case bytecode.MonitorEnter, bytecode.MonitorExit:
		obj := s.pop(st)
		if s.bailed {
			return nil
		}
		if obj.null == IsNull {
			return nil
		}
		derefNonNull(st, obj)
		return fall()

	case bytecode.Goto:
		return []edge{{int(ins.A), st}}

	case bytecode.IfEq, bytecode.IfNe, bytecode.IfLt, bytecode.IfGe,
		bytecode.IfGt, bytecode.IfLe:
		v := s.pop(st)
		if s.bailed {
			return nil
		}
		return s.branch2(pc, int(ins.A), st, v, intVal(Point(0)), unaryRel(ins.Op))

	case bytecode.IfICmpEq, bytecode.IfICmpNe, bytecode.IfICmpLt,
		bytecode.IfICmpGe, bytecode.IfICmpGt, bytecode.IfICmpLe:
		v2 := s.pop(st)
		v1 := s.pop(st)
		if s.bailed {
			return nil
		}
		return s.branch2(pc, int(ins.A), st, v1, v2, cmpRel(ins.Op))

	case bytecode.IfACmpEq, bytecode.IfACmpNe:
		v2 := s.pop(st)
		v1 := s.pop(st)
		if s.bailed {
			return nil
		}
		taken := st.clone()
		eqSt, neSt := taken, st
		if ins.Op == bytecode.IfACmpNe {
			eqSt, neSt = st, taken
		}
		refineAgainstNull(eqSt, v1, v2, true)
		refineAgainstNull(neSt, v1, v2, false)
		return []edge{{pc + 1, st}, {int(ins.A), taken}}

	case bytecode.IfNull, bytecode.IfNonNull:
		v := s.pop(st)
		if s.bailed {
			return nil
		}
		refineNull := func(s2 *state, isNull bool) bool {
			if isNull {
				if v.null == NonNull {
					return false
				}
				s2.refineFrom(v, func(x *aval) { x.null = IsNull })
			} else {
				if v.null == IsNull {
					return false
				}
				s2.refineFrom(v, func(x *aval) { x.null = NonNull })
			}
			return true
		}
		takenNull := ins.Op == bytecode.IfNull
		taken := st.clone()
		var edges []edge
		if refineNull(taken, takenNull) {
			edges = append(edges, edge{int(ins.A), taken})
		}
		if refineNull(st, !takenNull) {
			edges = append(edges, edge{pc + 1, st})
		}
		return edges

	case bytecode.InvokeVirtual, bytecode.InvokeStatic, bytecode.InvokeSpecial:
		return s.call(st, pc, ins)

	case bytecode.Return:
		s.a.markReturnsVoid(s.m)
		return nil
	case bytecode.IReturn, bytecode.FReturn:
		v := s.pop(st)
		if s.bailed {
			return nil
		}
		s.a.mergeRet(s.m, v, Range(0, math.MaxInt64))
		return nil
	case bytecode.AReturn:
		v := s.pop(st)
		if s.bailed {
			return nil
		}
		s.a.mergeRet(s.m, v, lenBound(s.lenOf, v))
		return nil
	}
	// Unknown opcode: the model is incomplete for this body.
	s.bailed = true
	return nil
}

// postAccess records what a completed (non-throwing) array access
// proves about its operands: the array is non-null and the index is in
// [0, len-1] — facts that flow back to the operands' locals.
func (s *msolver) postAccess(st *state, arr, idx aval) {
	derefNonNull(st, arr)
	lb := lenBound(s.lenOf, arr)
	hi := int64(math.MaxInt64)
	if lb.Hi < math.MaxInt64 {
		hi = lb.Hi - 1
	}
	o := arr.orig
	st.refineFrom(idx, func(v *aval) {
		if iv, ok := v.iv.Meet(Range(0, hi)); ok {
			v.iv = iv
		}
		if o != noOrigin {
			v.lt = addOrigin(v.lt, o)
		}
	})
}

// fieldVal models the value loaded by getfield/getstatic at pc.
func (s *msolver) fieldVal(st *state, pc int, ins bytecode.Instr) aval {
	var t bytecode.Type = bytecode.TInt
	if int(ins.A) < len(s.m.Class.Pool.Fields) {
		if f := s.m.Class.Pool.Fields[ins.A].Resolved; f != nil {
			t = f.Type
		}
	}
	if t == bytecode.TRef {
		o := s.defRef(st, pc)
		s.noteLen(o, Range(0, math.MaxInt64))
		return aval{iv: Full(), null: MaybeNull, orig: o, from: -1, eqLen: noOrigin}
	}
	return top()
}

// arith is the integer ALU transfer, overflow-safe throughout, with
// the symbolic carries that keep `len-k` and `x % len` style indices
// provable.
func (s *msolver) arith(op bytecode.Op, a, b aval) aval {
	out := top()
	switch op {
	case bytecode.IAdd:
		out.iv = a.iv.Add(b.iv)
		out.lt = carryDecreased(a, b.iv, out.lt)
		out.lt = carryDecreased(b, a.iv, out.lt)
	case bytecode.ISub:
		out.iv = a.iv.Sub(b.iv)
		if b.iv.Lo >= 0 {
			out.lt = append([]origin(nil), a.lt...)
			if a.eqLen != noOrigin && b.iv.Lo >= 1 {
				out.lt = addOrigin(out.lt, a.eqLen)
			}
		}
	case bytecode.IMul:
		out.iv = a.iv.Mul(b.iv)
	case bytecode.IDiv:
		if a.iv.Lo >= 0 && b.iv.Lo >= 1 {
			out.iv = Range(0, a.iv.Hi)
		}
	case bytecode.IRem:
		if b.iv.Lo >= 1 {
			if a.iv.Lo >= 0 {
				out.iv = Range(0, b.iv.Hi-1)
				// r < b, so every upper bound on b bounds r too.
				out.lt = append([]origin(nil), b.lt...)
				if b.eqLen != noOrigin {
					out.lt = addOrigin(out.lt, b.eqLen)
				}
			} else if b.iv.Hi <= math.MaxInt64-1 {
				out.iv = Range(-(b.iv.Hi - 1), b.iv.Hi-1)
			}
		}
	case bytecode.IAnd:
		switch {
		case b.iv.Lo == b.iv.Hi && b.iv.Lo >= 0:
			out.iv = Range(0, b.iv.Lo)
		case a.iv.Lo == a.iv.Hi && a.iv.Lo >= 0:
			out.iv = Range(0, a.iv.Lo)
		case a.iv.Lo >= 0 && b.iv.Lo >= 0:
			out.iv = Range(0, min64(a.iv.Hi, b.iv.Hi))
		}
	case bytecode.IOr, bytecode.IXor:
		if a.iv.Lo >= 0 && b.iv.Lo >= 0 {
			out.iv = Range(0, math.MaxInt64)
		}
	case bytecode.IShl:
		if b.iv.Lo == b.iv.Hi && b.iv.Lo >= 0 && b.iv.Lo <= 62 {
			out.iv = a.iv.Mul(Point(int64(1) << uint(b.iv.Lo)))
		}
	case bytecode.IShr:
		if b.iv.Lo == b.iv.Hi && b.iv.Lo >= 0 && b.iv.Lo <= 63 {
			k := uint(b.iv.Lo)
			out.iv = Range(a.iv.Lo>>k, a.iv.Hi>>k)
		} else if a.iv.Lo >= 0 {
			out.iv = Range(0, a.iv.Hi)
		}
	case bytecode.IUshr:
		if a.iv.Lo >= 0 {
			if b.iv.Lo == b.iv.Hi && b.iv.Lo >= 0 && b.iv.Lo <= 63 {
				k := uint(b.iv.Lo)
				out.iv = Range(a.iv.Lo>>k, a.iv.Hi>>k)
			} else {
				out.iv = Range(0, a.iv.Hi)
			}
		}
	}
	return out
}

// carryDecreased keeps x's strict upper bounds when adding a
// non-positive delta (x + d <= x < len), including the bound implied
// by x == len when the delta is strictly negative.
func carryDecreased(x aval, delta Interval, lt []origin) []origin {
	if delta.Hi > 0 {
		return lt
	}
	for _, o := range x.lt {
		lt = addOrigin(lt, o)
	}
	if x.eqLen != noOrigin && delta.Hi <= -1 {
		lt = addOrigin(lt, x.eqLen)
	}
	return lt
}

// rel is a comparison relation for branch refinement.
type rel uint8

const (
	relEq rel = iota
	relNe
	relLt
	relGe
	relGt
	relLe
)

func unaryRel(op bytecode.Op) rel {
	switch op {
	case bytecode.IfEq:
		return relEq
	case bytecode.IfNe:
		return relNe
	case bytecode.IfLt:
		return relLt
	case bytecode.IfGe:
		return relGe
	case bytecode.IfGt:
		return relGt
	}
	return relLe
}

func cmpRel(op bytecode.Op) rel {
	switch op {
	case bytecode.IfICmpEq:
		return relEq
	case bytecode.IfICmpNe:
		return relNe
	case bytecode.IfICmpLt:
		return relLt
	case bytecode.IfICmpGe:
		return relGe
	case bytecode.IfICmpGt:
		return relGt
	}
	return relLe
}

func negate(r rel) rel {
	switch r {
	case relEq:
		return relNe
	case relNe:
		return relEq
	case relLt:
		return relGe
	case relGe:
		return relLt
	case relGt:
		return relLe
	}
	return relGt
}

// branch2 builds the two outgoing edges of a comparison `a REL b`,
// refining each side's operands (and their backing locals) under the
// edge's now-known relation. An edge whose refinement is contradictory
// is dropped.
func (s *msolver) branch2(pc, target int, fallSt *state, a, b aval, r rel) []edge {
	var edges []edge
	takenSt := fallSt.clone()
	if refineRel(takenSt, a, b, r) {
		edges = append(edges, edge{target, takenSt})
	}
	if refineRel(fallSt, a, b, negate(r)) {
		edges = append(edges, edge{pc + 1, fallSt})
	}
	return edges
}

// refineRel narrows a and b under `a REL b` in st; false means the
// relation is impossible for the incoming intervals (dead edge).
func refineRel(st *state, a, b aval, r rel) bool {
	na, nb := a, b
	switch r {
	case relEq:
		iv, ok := a.iv.Meet(b.iv)
		if !ok {
			return false
		}
		na.iv, nb.iv = iv, iv
		// a == b transfers b's symbolic bounds to a and vice versa.
		for _, o := range b.lt {
			na.lt = addOrigin(na.lt, o)
		}
		for _, o := range a.lt {
			nb.lt = addOrigin(nb.lt, o)
		}
		if b.eqLen != noOrigin && na.eqLen == noOrigin {
			na.eqLen = b.eqLen
		}
		if a.eqLen != noOrigin && nb.eqLen == noOrigin {
			nb.eqLen = a.eqLen
		}
	case relNe:
		if a.iv.Lo == a.iv.Hi && a.iv.Lo == b.iv.Lo && a.iv.Lo == b.iv.Hi {
			return false
		}
		if b.iv.Lo == b.iv.Hi {
			na.iv = shaveEndpoint(a.iv, b.iv.Lo)
		}
		if a.iv.Lo == a.iv.Hi {
			nb.iv = shaveEndpoint(b.iv, a.iv.Lo)
		}
	case relLt, relLe:
		strict := int64(0)
		if r == relLt {
			strict = 1
		}
		if bHi, ok := subChecked(b.iv.Hi, strict); ok {
			iv, mok := a.iv.Meet(Range(math.MinInt64, bHi))
			if !mok {
				return false
			}
			na.iv = iv
		}
		if aLo, ok := addChecked(a.iv.Lo, strict); ok {
			iv, mok := b.iv.Meet(Range(aLo, math.MaxInt64))
			if !mok {
				return false
			}
			nb.iv = iv
		}
		// a <(=) b: every strict bound on b bounds a, and b == len(o)
		// makes a < len(o) when the comparison is strict.
		for _, o := range b.lt {
			na.lt = addOrigin(na.lt, o)
		}
		if r == relLt && b.eqLen != noOrigin {
			na.lt = addOrigin(na.lt, b.eqLen)
		}
	case relGt, relGe:
		strict := int64(0)
		if r == relGt {
			strict = 1
		}
		if aHi, ok := subChecked(a.iv.Hi, strict); ok {
			iv, mok := b.iv.Meet(Range(math.MinInt64, aHi))
			if !mok {
				return false
			}
			nb.iv = iv
		}
		if bLo, ok := addChecked(b.iv.Lo, strict); ok {
			iv, mok := a.iv.Meet(Range(bLo, math.MaxInt64))
			if !mok {
				return false
			}
			na.iv = iv
		}
		for _, o := range a.lt {
			nb.lt = addOrigin(nb.lt, o)
		}
		if r == relGt && a.eqLen != noOrigin {
			nb.lt = addOrigin(nb.lt, a.eqLen)
		}
	}
	st.refineFrom(a, func(v *aval) { v.iv, v.lt, v.eqLen = na.iv, na.lt, na.eqLen })
	st.refineFrom(b, func(v *aval) { v.iv, v.lt, v.eqLen = nb.iv, nb.lt, nb.eqLen })
	return true
}

// shaveEndpoint tightens iv by excluding the single value v when it
// sits on an endpoint.
func shaveEndpoint(iv Interval, v int64) Interval {
	if iv.Lo == v && iv.Lo < iv.Hi {
		iv.Lo++
	} else if iv.Hi == v && iv.Lo < iv.Hi {
		iv.Hi--
	}
	return iv
}

// refineAgainstNull handles if_acmpeq/ne when one side is the null
// constant: on the equal edge the other side is null, on the not-equal
// edge it is non-null.
func refineAgainstNull(st *state, a, b aval, equal bool) {
	want := NonNull
	if equal {
		want = IsNull
	}
	if b.null == IsNull {
		st.refineFrom(a, func(v *aval) { v.null = want })
	}
	if a.null == IsNull {
		st.refineFrom(b, func(v *aval) { v.null = want })
	}
}

// call models an invoke site: argument joins flow into every possible
// callee's entry summary, and the pushed result is the join of the
// callees' return summaries. A site none of whose callees has been
// seen to return yet has no fall-through (the interprocedural rounds
// revisit it once a callee's summary grows).
func (s *msolver) call(st *state, pc int, ins bytecode.Instr) []edge {
	if int(ins.A) >= len(s.m.Class.Pool.Methods) {
		s.bailed = true
		return nil
	}
	callee := s.m.Class.Pool.Methods[ins.A].Resolved
	if callee == nil {
		s.bailed = true
		return nil
	}
	nargs := len(callee.Sig.Params)
	if !callee.IsStatic() {
		nargs++
	}
	args := make([]aval, nargs)
	for i := nargs - 1; i >= 0; i-- {
		args[i] = s.pop(st)
	}
	if s.bailed {
		return nil
	}
	if !callee.IsStatic() {
		if args[0].null == IsNull {
			return nil // guaranteed NullPointer: no fall-through
		}
		derefNonNull(st, args[0])
	}

	var ret aval
	var retLen Interval
	returns := false
	joinRet := func(v aval, lenIv Interval) {
		if !returns {
			ret, retLen, returns = v, lenIv, true
			return
		}
		ret = joinVal(ret, v)
		retLen = retLen.Join(lenIv)
	}

	var targets []*bytecode.Method
	if ins.Op == bytecode.InvokeVirtual && callee.VIndex >= 0 {
		targets = s.a.res.Targets[ipa.Site{Method: s.m.ID, PC: pc}]
		if len(targets) == 0 {
			// No instantiated receiver class: the receiver can only be
			// null, so the call always throws.
			return nil
		}
	} else {
		targets = []*bytecode.Method{callee}
	}

	for _, t := range targets {
		if t.Class.Name == "Sys" || s.a.sums[t] == nil {
			// Intrinsic or unmodeled body: top effect.
			joinRet(top(), Range(0, math.MaxInt64))
			continue
		}
		s.a.enter(t)
		for i, arg := range args {
			s.a.mergeArg(t, i, arg, lenBound(s.lenOf, arg))
		}
		ts := s.a.sums[t]
		if ts.returns {
			joinRet(ts.ret, ts.retLen)
		}
	}
	if !returns {
		return nil
	}

	switch callee.Sig.Ret {
	case bytecode.TVoid:
	case bytecode.TRef:
		o := s.defRef(st, pc)
		s.noteLen(o, retLen)
		st.push(aval{iv: Full(), null: ret.null, orig: o, from: -1, eqLen: noOrigin})
	case bytecode.TInt:
		st.push(intVal(ret.iv))
	default:
		st.push(top())
	}
	return []edge{{pc + 1, st}}
}
