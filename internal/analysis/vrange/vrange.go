package vrange

import (
	"math"
	"sort"

	"jrs/internal/analysis/ipa"
	"jrs/internal/bytecode"
)

// origin identifies the dynamic value a symbolic fact is about: the
// most recent value produced by one value-producing instruction (pc
// origins, >= 0) or one incoming parameter (param origins, <= -2).
// noOrigin (-1) marks values with no tracked identity. When a pc
// origin's defining instruction re-executes, every fact mentioning it
// is killed and every other slot still carrying it is stripped, so an
// origin always denotes a single dynamic value — which makes the
// symbolic length facts (len(o) is immutable per value) sound across
// loop iterations.
type origin = int32

const noOrigin origin = -1

func paramOrigin(i int) origin { return origin(-2 - i) }

// aval is the abstract value of one stack or local slot. Integer slots
// use iv plus the symbolic facts (eqLen: value == len(o); lt: value <
// len(o) for each listed origin). Reference slots use null and orig.
// from records which local the value was loaded from (and that the
// local is unchanged since), so branch refinements and post-
// dereference non-null facts propagate back to the local.
type aval struct {
	iv    Interval
	null  Nullness
	orig  origin
	from  int16
	eqLen origin
	lt    []origin
}

func top() aval {
	return aval{iv: Full(), null: MaybeNull, orig: noOrigin, from: -1, eqLen: noOrigin}
}

func intVal(iv Interval) aval {
	v := top()
	v.iv = iv
	return v
}

func hasOrigin(set []origin, o origin) bool {
	for _, x := range set {
		if x == o {
			return true
		}
	}
	return false
}

func addOrigin(set []origin, o origin) []origin {
	if hasOrigin(set, o) {
		return set
	}
	out := make([]origin, 0, len(set)+1)
	out = append(out, set...)
	out = append(out, o)
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func removeOrigin(set []origin, o origin) []origin {
	if !hasOrigin(set, o) {
		return set
	}
	out := make([]origin, 0, len(set)-1)
	for _, x := range set {
		if x != o {
			out = append(out, x)
		}
	}
	return out
}

func intersectOrigins(a, b []origin) []origin {
	if len(a) == 0 || len(b) == 0 {
		return nil
	}
	var out []origin
	for _, x := range a {
		if hasOrigin(b, x) {
			out = append(out, x)
		}
	}
	return out
}

func joinVal(a, b aval) aval {
	out := aval{iv: a.iv.Join(b.iv), null: JoinNull(a.null, b.null)}
	out.orig, out.from, out.eqLen = noOrigin, -1, noOrigin
	if a.orig == b.orig {
		out.orig = a.orig
	}
	if a.from == b.from {
		out.from = a.from
	}
	if a.eqLen == b.eqLen {
		out.eqLen = a.eqLen
	}
	out.lt = intersectOrigins(a.lt, b.lt)
	return out
}

func widenVal(prev, next aval) aval {
	out := joinVal(prev, next)
	out.iv = prev.iv.Widen(next.iv)
	return out
}

func equalVal(a, b aval) bool {
	if a.iv != b.iv || a.null != b.null || a.orig != b.orig ||
		a.from != b.from || a.eqLen != b.eqLen || len(a.lt) != len(b.lt) {
		return false
	}
	for i := range a.lt {
		if a.lt[i] != b.lt[i] {
			return false
		}
	}
	return true
}

// state is the abstract machine state flowing into one pc.
type state struct {
	stack  []aval
	locals []aval
}

func (s *state) clone() *state {
	c := &state{stack: make([]aval, len(s.stack)), locals: make([]aval, len(s.locals))}
	copy(c.stack, s.stack)
	copy(c.locals, s.locals)
	return c
}

func (s *state) push(v aval) { s.stack = append(s.stack, v) }

func (s *state) pop() (aval, bool) {
	if len(s.stack) == 0 {
		return aval{}, false
	}
	v := s.stack[len(s.stack)-1]
	s.stack = s.stack[:len(s.stack)-1]
	return v, true
}

// each visits every slot (stack then locals) of the state.
func (s *state) each(f func(v *aval)) {
	for i := range s.stack {
		f(&s.stack[i])
	}
	for i := range s.locals {
		f(&s.locals[i])
	}
}

// killOrigin makes o denote only the value about to be produced at its
// defining pc: strips o as identity from every slot and drops every
// symbolic fact that mentions it.
func (s *state) killOrigin(o origin) {
	s.each(func(v *aval) {
		if v.orig == o {
			v.orig = noOrigin
		}
		if v.eqLen == o {
			v.eqLen = noOrigin
		}
		v.lt = removeOrigin(v.lt, o)
	})
}

// killFrom drops the from-local provenance after local l is
// overwritten; the slots keep their own (still valid) value facts.
func (s *state) killFrom(l int) {
	s.each(func(v *aval) {
		if v.from == int16(l) {
			v.from = -1
		}
	})
}

// refineFrom applies a refinement of value v to its backing local (and
// any other live copy of that local), so facts learned at a branch or
// a dereference survive the pop.
func (s *state) refineFrom(v aval, apply func(*aval)) {
	if v.from < 0 {
		return
	}
	l := v.from
	if int(l) < len(s.locals) {
		apply(&s.locals[l])
	}
	for i := range s.stack {
		if s.stack[i].from == l {
			apply(&s.stack[i])
		}
	}
}

// mergeInto joins src into dst (widening intervals when dst is a loop
// head) and reports whether dst changed.
func mergeInto(dst, src *state, widen bool) (bool, bool) {
	if len(dst.stack) != len(src.stack) || len(dst.locals) != len(src.locals) {
		return false, false // inconsistent shapes: caller bails
	}
	changed := false
	mix := func(d *aval, s aval) {
		var n aval
		if widen {
			n = widenVal(*d, s)
		} else {
			n = joinVal(*d, s)
		}
		if !equalVal(*d, n) {
			*d = n
			changed = true
		}
	}
	for i := range dst.stack {
		mix(&dst.stack[i], src.stack[i])
	}
	for i := range dst.locals {
		mix(&dst.locals[i], src.locals[i])
	}
	return changed, true
}

// msum is one method's interprocedural summary: the join of entry
// values over every modeled call site plus the join of returned
// values. entered=false means no modeled path calls the method yet
// (its body is not analyzed this round); returns=false means no return
// instruction has been reached yet (callers treat the call as not
// falling through).
type msum struct {
	entered  bool
	params   []aval
	paramLen []Interval
	returns  bool
	ret      aval
	retLen   Interval
}

// Result carries the per-site verdicts. Bounds maps every reachable
// array-access site to whether the full bounds+null check is proven
// redundant; Null maps every reachable explicit null-check site
// (getfield/putfield/arraylength/invoke receiver/monitorenter/-exit)
// to whether the reference is proven non-null.
type Result struct {
	Bounds map[ipa.Site]bool
	Null   map[ipa.Site]bool

	methods map[int]*bytecode.Method
}

// BoundsProvenID reports whether the access at (method id, pc) is
// proven in range on a non-null array.
func (r *Result) BoundsProvenID(id, pc int) bool { return r.Bounds[ipa.Site{Method: id, PC: pc}] }

// NullProvenID reports whether the reference checked at (method id,
// pc) is proven non-null.
func (r *Result) NullProvenID(id, pc int) bool { return r.Null[ipa.Site{Method: id, PC: pc}] }

// Census is the provable-checks tally for one program.
type Census struct {
	Methods      int `json:"methods"`
	BoundsSites  int `json:"boundsSites"`
	BoundsProven int `json:"boundsProven"`
	NullSites    int `json:"nullSites"`
	NullProven   int `json:"nullProven"`
}

// Summarize tallies the verdicts.
func (r *Result) Summarize() Census {
	c := Census{Methods: len(r.methods)}
	for _, ok := range r.Bounds {
		c.BoundsSites++
		if ok {
			c.BoundsProven++
		}
	}
	for _, ok := range r.Null {
		c.NullSites++
		if ok {
			c.NullProven++
		}
	}
	return c
}

// SiteVerdict is one site's verdict in reportable form.
type SiteVerdict struct {
	Method string `json:"method"`
	PC     int    `json:"pc"`
	Kind   string `json:"kind"` // "bounds" or "null"
	Proven bool   `json:"proven"`
}

// SortedSites lists every analyzed check site (method name, pc, kind
// order) for the deterministic census reports.
func (r *Result) SortedSites() []SiteVerdict {
	var out []SiteVerdict
	add := func(m map[ipa.Site]bool, kind string) {
		for site, ok := range m {
			meth := r.methods[site.Method]
			if meth == nil {
				continue
			}
			out = append(out, SiteVerdict{Method: meth.FullName(), PC: site.PC, Kind: kind, Proven: ok})
		}
	}
	add(r.Bounds, "bounds")
	add(r.Null, "null")
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Method != b.Method {
			return a.Method < b.Method
		}
		if a.PC != b.PC {
			return a.PC < b.PC
		}
		return a.Kind < b.Kind
	})
	return out
}

// analyzer drives the interprocedural fixpoint over the reachable
// methods of the ipa call graph.
type analyzer struct {
	res     *ipa.Result
	order   []*bytecode.Method
	sums    map[*bytecode.Method]*msum
	bailedM map[*bytecode.Method]bool
	changed bool
	widen   bool
	result  *Result
}

// Analyze runs the whole-program value-range and nullness analysis.
// res must be the ipa result over the same (already loaded) class set:
// it supplies reachability, roots, and RTA-narrowed virtual-call
// target sets.
func Analyze(classes []*bytecode.Class, res *ipa.Result) *Result {
	a := &analyzer{
		res:     res,
		sums:    map[*bytecode.Method]*msum{},
		bailedM: map[*bytecode.Method]bool{},
		result: &Result{
			Bounds:  map[ipa.Site]bool{},
			Null:    map[ipa.Site]bool{},
			methods: map[int]*bytecode.Method{},
		},
	}
	instantiated := map[*bytecode.Class]bool{}
	for c, ok := range res.Instantiated {
		if ok {
			instantiated[c] = true
		}
	}
	for _, c := range classes {
		if c.Name == "Sys" {
			continue
		}
		for _, m := range c.Methods {
			if !res.Reachable[m] || len(m.Code) == 0 {
				continue
			}
			a.order = append(a.order, m)
			a.sums[m] = newSum(m)
			a.result.methods[m.ID] = m
		}
	}
	sort.Slice(a.order, func(i, j int) bool { return a.order[i].ID < a.order[j].ID })

	// Roots enter with top parameters; the receiver of any instance
	// method is non-null by the engines' invoke-side checks (the
	// interpreter's explicit receiver CheckNull, the JIT's vtable
	// class-id load that traps at address 0, and spawn's CheckNull for
	// run() roots).
	for _, m := range res.Roots {
		a.topEntry(m)
	}
	for _, c := range classes {
		if !instantiated[c] {
			continue
		}
		for _, m := range c.VTable {
			if m != nil && m.Name == "run" && len(m.Sig.Params) == 0 &&
				m.Sig.Ret == bytecode.TVoid && res.Reachable[m] {
				a.topEntry(m)
			}
		}
	}

	const maxRounds = 40
	round := 0
	for ; round < maxRounds; round++ {
		a.changed = false
		a.widen = round >= 6
		for _, m := range a.order {
			if a.sums[m].entered && !a.bailedM[m] {
				a.solve(m, false)
			}
		}
		if !a.changed {
			break
		}
	}
	if round == maxRounds {
		// No convergence (should not happen with widening): drop to the
		// sound top summaries and take whatever intra-method facts remain.
		for _, m := range a.order {
			a.topEntry(m)
			s := a.sums[m]
			s.returns, s.ret, s.retLen = true, top(), Range(0, math.MaxInt64)
		}
	}
	for _, m := range a.order {
		if a.sums[m].entered && !a.bailedM[m] {
			a.solve(m, true)
		}
	}
	if debugSums != nil {
		debugSums(a)
	}
	return a.result
}

// debugSums, when set (tests only), observes the final analyzer state.
var debugSums func(a *analyzer)

func newSum(m *bytecode.Method) *msum {
	n := m.NumArgs()
	s := &msum{params: make([]aval, n), paramLen: make([]Interval, n)}
	for i := range s.params {
		s.params[i] = bottomParam()
	}
	return s
}

// bottomParam is the identity of the call-site join: an empty interval
// plus facts that any join immediately collapses to the argument's.
func bottomParam() aval {
	return aval{iv: Interval{Lo: math.MaxInt64, Hi: math.MinInt64}, null: MaybeNull,
		orig: noOrigin, from: -1, eqLen: noOrigin}
}

// topEntry forces m's entry summary to top (receiver still non-null).
func (a *analyzer) topEntry(m *bytecode.Method) {
	s := a.sums[m]
	if s == nil {
		return
	}
	full := Range(0, math.MaxInt64)
	for i := range s.params {
		v := top()
		if i == 0 && !m.IsStatic() {
			v.null = NonNull
		}
		if !s.entered || !equalVal(s.params[i], v) || s.paramLen[i] != full {
			a.changed = true
		}
		s.params[i], s.paramLen[i] = v, full
	}
	if !s.entered {
		a.changed = true
	}
	s.entered = true
}

// enter marks t's body as called this round. mergeArg also sets the
// flag, but only fires per argument — a zero-argument callee is
// entered through here alone.
func (a *analyzer) enter(t *bytecode.Method) {
	s := a.sums[t]
	if s != nil && !s.entered {
		s.entered = true
		a.changed = true
	}
}

// mergeArg joins one modeled call-site argument into the callee's
// entry summary.
func (a *analyzer) mergeArg(t *bytecode.Method, i int, v aval, lenIv Interval) {
	s := a.sums[t]
	if s == nil || i >= len(s.params) {
		return
	}
	arg := aval{iv: v.iv, null: v.null, orig: noOrigin, from: -1, eqLen: noOrigin}
	if i == 0 && !t.IsStatic() {
		arg.null = NonNull
	}
	cur := s.params[i]
	var next aval
	var nextLen Interval
	if cur.iv.Lo > cur.iv.Hi { // bottom: first observed call
		next, nextLen = arg, lenIv
	} else if a.widen {
		next, nextLen = widenVal(cur, arg), s.paramLen[i].Widen(lenIv)
	} else {
		next, nextLen = joinVal(cur, arg), s.paramLen[i].Join(lenIv)
	}
	if !s.entered || !equalVal(cur, next) || s.paramLen[i] != nextLen {
		a.changed = true
	}
	s.entered = true
	s.params[i], s.paramLen[i] = next, nextLen
}

// mergeRet joins one return value into m's summary.
func (a *analyzer) mergeRet(m *bytecode.Method, v aval, lenIv Interval) {
	s := a.sums[m]
	ret := aval{iv: v.iv, null: v.null, orig: noOrigin, from: -1, eqLen: noOrigin}
	var next aval
	var nextLen Interval
	if !s.returns {
		next, nextLen = ret, lenIv
	} else if a.widen {
		next, nextLen = widenVal(s.ret, ret), s.retLen.Widen(lenIv)
	} else {
		next, nextLen = joinVal(s.ret, ret), s.retLen.Join(lenIv)
	}
	if !s.returns || !equalVal(s.ret, next) || s.retLen != nextLen {
		a.changed = true
	}
	s.returns, s.ret, s.retLen = true, next, nextLen
}

func (a *analyzer) markReturnsVoid(m *bytecode.Method) {
	s := a.sums[m]
	if !s.returns {
		s.returns = true
		a.changed = true
	}
}

// bail abandons analysis of m: it contributes no proofs, and every
// call target inside it is conservatively entered with top arguments
// (the method may call them in ways the model no longer tracks).
func (a *analyzer) bail(m *bytecode.Method) {
	if a.bailedM[m] {
		return
	}
	a.bailedM[m] = true
	a.changed = true
	s := a.sums[m]
	s.returns, s.ret, s.retLen = true, top(), Range(0, math.MaxInt64)
	for pc, ins := range m.Code {
		switch ins.Op {
		case bytecode.InvokeStatic, bytecode.InvokeSpecial:
			if callee := m.Class.Pool.Methods[ins.A].Resolved; callee != nil && callee.Class.Name != "Sys" {
				a.topEntry(callee)
			}
		case bytecode.InvokeVirtual:
			for _, t := range a.res.Targets[ipa.Site{Method: m.ID, PC: pc}] {
				a.topEntry(t)
			}
		}
	}
}

// lenBound returns the known length interval of the value (for arrays
// with a tracked origin), defaulting to the full non-negative range.
func lenBound(lenOf map[origin]Interval, v aval) Interval {
	if v.orig != noOrigin {
		if iv, ok := lenOf[v.orig]; ok {
			return iv
		}
	}
	return Range(0, math.MaxInt64)
}

// msolver runs the flow-sensitive dataflow over one method body.
type msolver struct {
	a      *analyzer
	m      *bytecode.Method
	record bool

	in       map[int]*state
	loopHead map[int]bool
	lenOf    map[origin]Interval
	lenDirty map[origin]bool
	bailed   bool
	bailPC   int
}

// debugBail, when set (tests only), observes every method the solver
// abandons with the pc it gave up at.
var debugBail func(m *bytecode.Method, pc int)

type edge struct {
	to int
	st *state
}

func (a *analyzer) solve(m *bytecode.Method, record bool) {
	s := &msolver{a: a, m: m, record: record, loopHead: map[int]bool{}}
	for pc, ins := range m.Code {
		if ins.Op.IsBranch() && int(ins.A) <= pc {
			s.loopHead[int(ins.A)] = true
		}
	}
	sum := a.sums[m]
	entry := &state{locals: make([]aval, m.MaxLocals)}
	for i := range entry.locals {
		entry.locals[i] = top()
	}
	baseLen := map[origin]Interval{}
	for i := 0; i < m.NumArgs() && i < len(entry.locals); i++ {
		p := sum.params[i]
		if p.iv.Lo > p.iv.Hi { // bottom param on an entered method: treat as top
			p = top()
		}
		v := aval{iv: p.iv, null: p.null, orig: paramOrigin(i), from: -1, eqLen: noOrigin}
		if i == 0 && !m.IsStatic() {
			v.null = NonNull
		}
		entry.locals[i] = v
		baseLen[paramOrigin(i)] = sum.paramLen[i]
	}

	// The symbolic length table is monotone within the solve but feeds
	// transfer functions, so re-run the worklist until it stabilizes
	// (widening surviving dirty entries before the final pass).
	s.lenOf = map[origin]Interval{}
	for k, v := range baseLen {
		s.lenOf[k] = v
	}
	for round := 0; round < 4; round++ {
		s.lenDirty = map[origin]bool{}
		s.run(entry)
		if s.bailed {
			if debugBail != nil {
				debugBail(m, s.bailPC)
			}
			a.bail(m)
			return
		}
		if len(s.lenDirty) == 0 {
			break
		}
		if round == 2 {
			for k := range s.lenDirty {
				s.lenOf[k] = Range(0, math.MaxInt64)
			}
		}
	}
	if record {
		s.collect()
	}
}

func (s *msolver) run(entry *state) {
	s.in = map[int]*state{0: entry.clone()}
	work := []int{0}
	queued := map[int]bool{0: true}
	steps := 0
	for len(work) > 0 {
		steps++
		if steps > 200000 {
			s.bailed = true
			return
		}
		pc := work[0]
		work = work[1:]
		queued[pc] = false
		if pc < 0 || pc >= len(s.m.Code) {
			s.bailed = true
			return
		}
		st := s.in[pc].clone()
		edges := s.step(pc, st)
		if s.bailed {
			s.bailPC = pc
			return
		}
		for _, e := range edges {
			if e.to < 0 || e.to >= len(s.m.Code) {
				s.bailed, s.bailPC = true, pc
				return
			}
			cur, ok := s.in[e.to]
			if !ok {
				s.in[e.to] = e.st.clone()
			} else {
				changed, shapeOK := mergeInto(cur, e.st, s.loopHead[e.to])
				if !shapeOK {
					s.bailed, s.bailPC = true, pc
					return
				}
				if !changed {
					continue
				}
			}
			if !queued[e.to] {
				queued[e.to] = true
				work = append(work, e.to)
			}
		}
	}
}

// noteLen joins a symbolic length observation for origin o.
func (s *msolver) noteLen(o origin, iv Interval) {
	cur, ok := s.lenOf[o]
	if !ok {
		s.lenOf[o] = iv
		s.lenDirty[o] = true
		return
	}
	next := cur.Join(iv)
	if next != cur {
		s.lenOf[o] = next
		s.lenDirty[o] = true
	}
}

// defRef prepares the state for a reference produced at pc: kills the
// previous incarnation of the origin and returns it.
func (s *msolver) defRef(st *state, pc int) origin {
	o := origin(pc)
	st.killOrigin(o)
	return o
}

func (s *msolver) pop(st *state) aval {
	v, ok := st.pop()
	if !ok {
		s.bailed = true
		return top()
	}
	return v
}

// derefNonNull records the post-dereference fact: the VM throws (and
// the method never continues) on a null dereference, so on the
// fall-through path the reference — and the local it came from — is
// non-null.
func derefNonNull(st *state, ref aval) {
	st.refineFrom(ref, func(v *aval) { v.null = NonNull })
}

// boundsProven decides the tentpole question for one array access.
func (s *msolver) boundsProven(arr, idx aval) bool {
	if arr.null != NonNull || idx.iv.Lo < 0 {
		return false
	}
	if arr.orig != noOrigin && hasOrigin(idx.lt, arr.orig) {
		return true
	}
	lb := lenBound(s.lenOf, arr)
	return idx.iv.Hi < lb.Lo
}

func (s *msolver) site(pc int) ipa.Site { return ipa.Site{Method: s.m.ID, PC: pc} }

// collect records the per-site verdicts from the fixpoint in-states.
func (s *msolver) collect() {
	for pc, st := range s.in {
		ins := s.m.Code[pc]
		n := len(st.stack)
		at := func(depth int) (aval, bool) {
			if n < depth {
				return aval{}, false
			}
			return st.stack[n-depth], true
		}
		switch ins.Op {
		case bytecode.IALoad, bytecode.FALoad, bytecode.AALoad, bytecode.CALoad:
			arr, ok1 := at(2)
			idx, ok2 := at(1)
			if ok1 && ok2 {
				s.a.result.Bounds[s.site(pc)] = s.boundsProven(arr, idx)
			}
		case bytecode.IAStore, bytecode.FAStore, bytecode.AAStore, bytecode.CAStore:
			arr, ok1 := at(3)
			idx, ok2 := at(2)
			if ok1 && ok2 {
				s.a.result.Bounds[s.site(pc)] = s.boundsProven(arr, idx)
			}
		case bytecode.ArrayLength, bytecode.MonitorEnter, bytecode.MonitorExit:
			if ref, ok := at(1); ok {
				s.a.result.Null[s.site(pc)] = ref.null == NonNull
			}
		case bytecode.GetField:
			if ref, ok := at(1); ok {
				s.a.result.Null[s.site(pc)] = ref.null == NonNull
			}
		case bytecode.PutField:
			if ref, ok := at(2); ok {
				s.a.result.Null[s.site(pc)] = ref.null == NonNull
			}
		case bytecode.InvokeVirtual, bytecode.InvokeSpecial:
			callee := s.m.Class.Pool.Methods[ins.A].Resolved
			if callee == nil || callee.IsStatic() {
				continue
			}
			nargs := len(callee.Sig.Params) + 1
			if recv, ok := at(nargs); ok {
				s.a.result.Null[s.site(pc)] = recv.null == NonNull
			}
		}
	}
}
