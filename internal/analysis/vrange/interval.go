// Package vrange is a whole-program value-range and nullness analysis
// over the loaded class set: an SCCP-style per-method dataflow on an
// interval lattice with widening at loop heads, flow-sensitive
// nullness, and symbolic array-length facts (len(a) threaded through
// newarray/arraylength and interprocedural argument/return summaries
// on the ipa RTA call graph). Its verdicts — BoundsProven / NullProven
// per bytecode site — let the execution engines elide the runtime
// checks the paper charges to Java's dynamic safety semantics, and the
// CheckOracle re-validates every elided site at runtime so a soundness
// bug can never silently corrupt a run.
package vrange

import "math"

// Interval is a closed integer interval [Lo, Hi] over the VM's int64
// value domain. The full domain [MinInt64, MaxInt64] is the lattice
// top; empty intervals (Lo > Hi) are never stored in states — a
// refinement that would produce one marks its CFG edge unreachable
// instead.
type Interval struct{ Lo, Hi int64 }

// Full returns the top interval covering every representable value.
func Full() Interval { return Interval{math.MinInt64, math.MaxInt64} }

// Point returns the singleton interval [v, v].
func Point(v int64) Interval { return Interval{v, v} }

// Range returns [lo, hi].
func Range(lo, hi int64) Interval { return Interval{lo, hi} }

// IsFull reports whether the interval is the lattice top.
func (iv Interval) IsFull() bool { return iv.Lo == math.MinInt64 && iv.Hi == math.MaxInt64 }

// Contains reports whether v lies in the interval.
func (iv Interval) Contains(v int64) bool { return iv.Lo <= v && v <= iv.Hi }

// Join is the interval hull (least upper bound).
func (iv Interval) Join(o Interval) Interval {
	return Interval{min64(iv.Lo, o.Lo), max64(iv.Hi, o.Hi)}
}

// Meet intersects two intervals; ok is false when the intersection is
// empty (the combination is unreachable).
func (iv Interval) Meet(o Interval) (Interval, bool) {
	r := Interval{max64(iv.Lo, o.Lo), min64(iv.Hi, o.Hi)}
	return r, r.Lo <= r.Hi
}

// Widen extrapolates a growing bound to guarantee termination at loop
// heads: a sinking lower bound jumps to 0 if it stays non-negative
// (the threshold that preserves index-lower-bound proofs) and to
// MinInt64 otherwise; a rising upper bound jumps straight to MaxInt64.
// Loop exit conditions re-narrow the widened bound via branch
// refinement, so `i < a.length` loops still prove their accesses.
func (iv Interval) Widen(next Interval) Interval {
	out := iv.Join(next)
	if out.Lo < iv.Lo {
		if out.Lo >= 0 {
			out.Lo = 0
		} else {
			out.Lo = math.MinInt64
		}
	}
	if out.Hi > iv.Hi {
		out.Hi = math.MaxInt64
	}
	return out
}

// Add is overflow-safe interval addition: any bound computation that
// could wrap widens the result to Full, because the VM's concrete
// arithmetic wraps (Go int64) and a saturated bound would be unsound.
func (iv Interval) Add(o Interval) Interval {
	lo, ok1 := addChecked(iv.Lo, o.Lo)
	hi, ok2 := addChecked(iv.Hi, o.Hi)
	if !ok1 || !ok2 {
		return Full()
	}
	return Interval{lo, hi}
}

// Sub is overflow-safe interval subtraction.
func (iv Interval) Sub(o Interval) Interval {
	lo, ok1 := subChecked(iv.Lo, o.Hi)
	hi, ok2 := subChecked(iv.Hi, o.Lo)
	if !ok1 || !ok2 {
		return Full()
	}
	return Interval{lo, hi}
}

// Mul is overflow-safe interval multiplication (hull of the four
// corner products; Full on any overflow).
func (iv Interval) Mul(o Interval) Interval {
	lo, hi := int64(math.MaxInt64), int64(math.MinInt64)
	for _, a := range [2]int64{iv.Lo, iv.Hi} {
		for _, b := range [2]int64{o.Lo, o.Hi} {
			p, ok := mulChecked(a, b)
			if !ok {
				return Full()
			}
			lo, hi = min64(lo, p), max64(hi, p)
		}
	}
	return Interval{lo, hi}
}

// Neg negates the interval (Full when MinInt64 is inside, which has no
// int64 negation).
func (iv Interval) Neg() Interval {
	if iv.Lo == math.MinInt64 {
		return Full()
	}
	return Interval{-iv.Hi, -iv.Lo}
}

func addChecked(a, b int64) (int64, bool) {
	s := a + b
	if (b > 0 && s < a) || (b < 0 && s > a) {
		return 0, false
	}
	return s, true
}

func subChecked(a, b int64) (int64, bool) {
	d := a - b
	if (b < 0 && d < a) || (b > 0 && d > a) {
		return 0, false
	}
	return d, true
}

func mulChecked(a, b int64) (int64, bool) {
	if a == 0 || b == 0 {
		return 0, true
	}
	p := a * b
	if p/b != a || (a == math.MinInt64 && b == -1) {
		return 0, false
	}
	return p, true
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

// Nullness is the three-point reference lattice: NonNull and Null are
// incomparable facts, MaybeNull is their join (top). There is no
// bottom — unreachable states are simply absent.
type Nullness uint8

const (
	// MaybeNull is the unknown (top) element.
	MaybeNull Nullness = iota
	// NonNull means the reference is proven non-null.
	NonNull
	// IsNull means the reference is proven to be the null constant.
	IsNull
)

// JoinNull is the nullness least upper bound.
func JoinNull(a, b Nullness) Nullness {
	if a == b {
		return a
	}
	return MaybeNull
}

func (n Nullness) String() string {
	switch n {
	case NonNull:
		return "nonnull"
	case IsNull:
		return "null"
	}
	return "maybenull"
}
