package analysis

import (
	"fmt"

	"jrs/internal/bytecode"
)

// reachabilityPass reports every basic block that no path from method
// entry can reach. Dead blocks execute safely (they never run) but mark
// a code-generation bug — the MiniJava compiler prunes them, so any
// appearance in compiled output is a regression. One diagnostic is
// emitted per dead block, anchored at its first instruction.
func reachabilityPass(c *bytecode.Class, m *bytecode.Method, g *Graph) []Diagnostic {
	var out []Diagnostic
	for _, b := range g.Blocks {
		if g.Reachable(b.Index) {
			continue
		}
		out = append(out, Diagnostic{
			Method: m.FullName(), PC: b.Start, Pass: "reachability", Sev: Warning,
			Msg: fmt.Sprintf("unreachable code: instructions %d..%d (%d dead)",
				b.Start, b.End-1, b.End-b.Start),
		})
	}
	return out
}

// definiteAssignmentPass checks that every local-variable read is
// preceded by a write on all paths from entry. Parameter slots
// (including the receiver of instance methods) are assigned at entry.
// Our interpreter and JIT zero-fill frames, so a violation reads 0/null
// rather than garbage — but the JVM verifier this subsystem mirrors
// rejects such code, and in MiniJava output it means the compiler
// dropped an initialization.
func definiteAssignmentPass(c *bytecode.Class, m *bytecode.Method, g *Graph) []Diagnostic {
	in, err := Solve[assignSet](g, &assignFlow{m: m})
	if err != nil {
		// The intersection lattice cannot fail.
		return []Diagnostic{{Method: m.FullName(), PC: errPC(err),
			Pass: "definite-assignment", Sev: Error, Msg: err.Error()}}
	}
	var out []Diagnostic
	for _, bi := range g.RPO {
		b := g.Blocks[bi]
		s := in[bi].clone(m.MaxLocals)
		for i := b.Start; i < b.End; i++ {
			ins := m.Code[i]
			if slot, reads := localRead(ins); reads && !s.has(slot) {
				out = append(out, Diagnostic{
					Method: m.FullName(), PC: i, Pass: "definite-assignment", Sev: Error,
					Msg: fmt.Sprintf("local %d may be read before assignment", slot),
				})
			}
			if slot, writes := localWrite(ins); writes {
				s.set(slot)
			}
		}
	}
	return out
}

// assignSet is a bitset over local slots.
type assignSet []uint64

func newAssignSet(maxLocals int) assignSet {
	return make(assignSet, (maxLocals+63)/64)
}

func (s assignSet) clone(maxLocals int) assignSet {
	out := newAssignSet(maxLocals)
	copy(out, s)
	return out
}

func (s assignSet) has(slot int) bool {
	w := slot / 64
	return w < len(s) && s[w]&(1<<(slot%64)) != 0
}

func (s assignSet) set(slot int) {
	if w := slot / 64; w < len(s) {
		s[w] |= 1 << (slot % 64)
	}
}

// localRead returns the slot an instruction reads, if any. IInc both
// reads and writes its slot.
func localRead(ins bytecode.Instr) (int, bool) {
	switch ins.Op {
	case bytecode.ILoad, bytecode.FLoad, bytecode.ALoad, bytecode.IInc:
		return int(ins.A), true
	}
	return 0, false
}

// localWrite returns the slot an instruction writes, if any.
func localWrite(ins bytecode.Instr) (int, bool) {
	switch ins.Op {
	case bytecode.IStore, bytecode.FStore, bytecode.AStore, bytecode.IInc:
		return int(ins.A), true
	}
	return 0, false
}

// assignFlow is the forward must-analysis: a slot is definitely
// assigned at a point iff it is assigned on every path reaching it.
type assignFlow struct {
	m *bytecode.Method
}

func (f *assignFlow) Entry(*Graph) assignSet {
	s := newAssignSet(f.m.MaxLocals)
	args := f.m.NumArgs()
	for slot := 0; slot < args && slot < f.m.MaxLocals; slot++ {
		s.set(slot)
	}
	return s
}

func (f *assignFlow) Transfer(g *Graph, b *Block, in assignSet) (assignSet, error) {
	s := in.clone(f.m.MaxLocals)
	for i := b.Start; i < b.End; i++ {
		if slot, writes := localWrite(g.M.Code[i]); writes {
			s.set(slot)
		}
	}
	return s, nil
}

func (f *assignFlow) Join(g *Graph, b *Block, have, incoming assignSet) (assignSet, bool, error) {
	merged := have.clone(f.m.MaxLocals)
	changed := false
	for w := range merged {
		next := merged[w] & incoming[w]
		if next != merged[w] {
			merged[w] = next
			changed = true
		}
	}
	return merged, changed, nil
}
