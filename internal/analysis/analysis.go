// Package analysis is the runtime's static-analysis framework over
// bytecode method bodies — the functional analogue of the JVM verifier
// the paper's runtimes ran at class-load time, factored so the class
// loader, the JIT compiler and the `jrs lint` front-end share one
// implementation.
//
// The package is layered:
//
//   - BuildCFG partitions a method body into basic blocks with
//     successor/predecessor edges and a reverse-postorder numbering;
//   - Solve is a generic forward worklist engine running any Flow
//     problem over that graph to a fixed point;
//   - concrete passes built on the two: stack-type verification
//     (TypeFlow, shared with the JIT's register assigner), reachability
//     (dead-code detection), definite assignment of locals, and
//     monitor balance (MonitorEnter/MonitorExit pairing along all
//     paths — the lock discipline §5 of the paper studies dynamically).
//
// CheckMethod runs every pass and returns deterministic diagnostics;
// severity Error marks code the runtime should refuse to admit,
// severity Warning marks suspicious-but-executable code (our frames
// are zero-initialized, so e.g. unreachable blocks cannot corrupt a
// run but still indicate a compiler bug).
package analysis

import (
	"errors"
	"fmt"
	"sort"
	"strings"

	"jrs/internal/bytecode"
)

// posError is an analysis error anchored at a bytecode pc, so pass
// wrappers can place diagnostics precisely.
type posError struct {
	pc  int
	msg string
}

// Error implements error.
func (e *posError) Error() string { return e.msg }

// errPC extracts the anchored pc of an analysis error (0 if none).
func errPC(err error) int {
	var pe *posError
	if errors.As(err, &pe) {
		return pe.pc
	}
	return 0
}

// Severity classifies a diagnostic.
type Severity uint8

const (
	// Warning marks code that executes safely under this runtime but
	// would not survive a strict JVM verifier (dead blocks, …).
	Warning Severity = iota
	// Error marks code the loader must reject in full-verification mode.
	Error
)

// String returns the lint-report spelling.
func (s Severity) String() string {
	if s == Error {
		return "error"
	}
	return "warning"
}

// Diagnostic is one finding, addressable to a method and bytecode pc.
type Diagnostic struct {
	// Method is the method's FullName (Class.Name + sig).
	Method string
	// PC is the instruction index the finding anchors to.
	PC int
	// Pass names the producing pass.
	Pass string
	// Sev is the severity.
	Sev Severity
	// Msg is the human-readable description.
	Msg string
}

// String renders the diagnostic in the fixed report form.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s @%d: [%s] %s: %s", d.Method, d.PC, d.Pass, d.Sev, d.Msg)
}

// A pass analyzes one method over its control-flow graph.
type pass struct {
	name string
	run  func(c *bytecode.Class, m *bytecode.Method, g *Graph) []Diagnostic
}

// Passes run in this order; each is independent of the others' output.
var passes = []pass{
	{"typecheck", typecheckPass},
	{"reachability", reachabilityPass},
	{"definite-assignment", definiteAssignmentPass},
	{"monitor-balance", monitorBalancePass},
}

// PassNames returns the registered pass names in execution order.
func PassNames() []string {
	names := make([]string, len(passes))
	for i, p := range passes {
		names[i] = p.name
	}
	return names
}

// CheckMethod runs every pass over m and returns its findings sorted by
// (pc, pass). The class must have a resolved constant pool (the loader
// resolves it; lint links classes first). Structural validity
// (bytecode.Verify) is a precondition: structurally broken bodies are
// reported as a single "cfg" diagnostic.
func CheckMethod(c *bytecode.Class, m *bytecode.Method) []Diagnostic {
	if err := bytecode.Verify(c, m); err != nil {
		return []Diagnostic{{Method: m.FullName(), PC: 0, Pass: "structure",
			Sev: Error, Msg: err.Error()}}
	}
	g, err := BuildCFG(m)
	if err != nil {
		return []Diagnostic{{Method: m.FullName(), PC: 0, Pass: "cfg",
			Sev: Error, Msg: err.Error()}}
	}
	var out []Diagnostic
	for _, p := range passes {
		out = append(out, p.run(c, m, g)...)
	}
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].PC != out[j].PC {
			return out[i].PC < out[j].PC
		}
		return out[i].Pass < out[j].Pass
	})
	return out
}

// CheckClass runs CheckMethod over every declared method, in
// declaration order.
func CheckClass(c *bytecode.Class) []Diagnostic {
	var out []Diagnostic
	for _, m := range c.Methods {
		out = append(out, CheckMethod(c, m)...)
	}
	return out
}

// CheckProgram checks every class of a linked program in input order.
func CheckProgram(classes []*bytecode.Class) []Diagnostic {
	var out []Diagnostic
	for _, c := range classes {
		out = append(out, CheckClass(c)...)
	}
	return out
}

// Errors filters diags down to Error severity.
func Errors(diags []Diagnostic) []Diagnostic {
	var out []Diagnostic
	for _, d := range diags {
		if d.Sev == Error {
			out = append(out, d)
		}
	}
	return out
}

// Render formats diagnostics one per line (byte-deterministic for a
// fixed input order).
func Render(diags []Diagnostic) string {
	var b strings.Builder
	for _, d := range diags {
		b.WriteString(d.String())
		b.WriteByte('\n')
	}
	return b.String()
}

// MaxStackDepth returns the deepest operand stack a TypeFlow result
// proves the method reaches.
func MaxStackDepth(types [][]bytecode.Type) int {
	max := 0
	for _, s := range types {
		if len(s) > max {
			max = len(s)
		}
	}
	return max
}
