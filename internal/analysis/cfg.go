package analysis

import (
	"fmt"

	"jrs/internal/bytecode"
)

// Block is one basic block: a maximal straight-line instruction run
// [Start, End) entered only at Start and left only at End-1.
type Block struct {
	// Index is the block's position in Graph.Blocks (layout order).
	Index int
	// Start and End delimit the instruction range [Start, End).
	Start, End int
	// Succs and Preds are block indices. For a conditional branch the
	// fall-through successor precedes the taken successor.
	Succs, Preds []int
}

// Graph is a method's control-flow graph.
type Graph struct {
	M *bytecode.Method
	// Blocks is in layout (instruction) order.
	Blocks []*Block
	// BlockOf maps an instruction index to its containing block index.
	BlockOf []int
	// RPO lists the blocks reachable from entry in reverse postorder
	// (entry first); blocks absent from RPO are dead code.
	RPO []int

	reachable []bool
}

// Reachable reports whether block bi is reachable from entry.
func (g *Graph) Reachable(bi int) bool { return g.reachable[bi] }

// BuildCFG partitions m's body into basic blocks and computes edges and
// the reverse-postorder numbering. It fails on structural impossibilities
// (empty body, branch target out of range, control falling off the end)
// so passes can assume a well-formed graph.
func BuildCFG(m *bytecode.Method) (*Graph, error) {
	n := len(m.Code)
	if n == 0 {
		return nil, fmt.Errorf("%s: empty body", m.FullName())
	}
	last := m.Code[n-1].Op
	if !last.IsTerminal() {
		return nil, fmt.Errorf("%s: control falls off the end of the body", m.FullName())
	}

	// Leaders: entry, every branch target, every instruction after a
	// branch or terminal instruction.
	leader := make([]bool, n)
	leader[0] = true
	for i, ins := range m.Code {
		switch {
		case ins.Op.IsBranch():
			t := int(ins.A)
			if t < 0 || t >= n {
				return nil, fmt.Errorf("%s @%d %s: branch target %d out of range [0,%d)",
					m.FullName(), i, ins, ins.A, n)
			}
			leader[t] = true
			if i+1 < n {
				leader[i+1] = true
			}
		case ins.Op.IsTerminal():
			if i+1 < n {
				leader[i+1] = true
			}
		}
	}

	g := &Graph{M: m, BlockOf: make([]int, n)}
	for i := 0; i < n; i++ {
		if leader[i] {
			g.Blocks = append(g.Blocks, &Block{Index: len(g.Blocks), Start: i})
		}
		g.BlockOf[i] = len(g.Blocks) - 1
	}
	for bi, b := range g.Blocks {
		if bi+1 < len(g.Blocks) {
			b.End = g.Blocks[bi+1].Start
		} else {
			b.End = n
		}
	}

	for _, b := range g.Blocks {
		ins := m.Code[b.End-1]
		switch {
		case ins.Op == bytecode.Goto:
			b.Succs = []int{g.BlockOf[int(ins.A)]}
		case ins.Op.IsBranch():
			// A conditional branch cannot be the method's last
			// instruction (the terminal check above), so b.End < n.
			ft, taken := g.BlockOf[b.End], g.BlockOf[int(ins.A)]
			b.Succs = []int{ft}
			if taken != ft {
				b.Succs = append(b.Succs, taken)
			}
		case ins.Op.IsTerminal():
			// Returns: no successors.
		default:
			b.Succs = []int{g.BlockOf[b.End]}
		}
	}
	for _, b := range g.Blocks {
		for _, s := range b.Succs {
			g.Blocks[s].Preds = append(g.Blocks[s].Preds, b.Index)
		}
	}

	g.buildRPO()
	return g, nil
}

// buildRPO runs an iterative DFS from entry recording postorder, then
// reverses it. Successor visit order is the Succs order, so the result
// is deterministic for a given body.
func (g *Graph) buildRPO() {
	g.reachable = make([]bool, len(g.Blocks))
	var post []int
	// Frame: block index plus the next successor position to visit.
	type frame struct{ b, next int }
	stack := []frame{{0, 0}}
	g.reachable[0] = true
	for len(stack) > 0 {
		f := &stack[len(stack)-1]
		succs := g.Blocks[f.b].Succs
		if f.next < len(succs) {
			s := succs[f.next]
			f.next++
			if !g.reachable[s] {
				g.reachable[s] = true
				stack = append(stack, frame{s, 0})
			}
			continue
		}
		post = append(post, f.b)
		stack = stack[:len(stack)-1]
	}
	g.RPO = make([]int, len(post))
	for i, b := range post {
		g.RPO[len(post)-1-i] = b
	}
}
