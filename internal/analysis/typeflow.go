package analysis

import (
	"fmt"

	"jrs/internal/bytecode"
)

// TypeFlow computes the operand-stack type vector at the entry of every
// instruction of m via a fixed-point dataflow over the CFG, failing on
// any stack-discipline violation: underflow, operand type mismatches,
// inconsistent shapes at join points, wrong return opcode for the
// signature, or control falling off the end. The JIT consumes the
// vectors to assign stack slots to integer vs. floating registers; the
// loader's full-verification mode and `jrs lint` use it as the
// stack-type verifier. Instructions unreachable from entry keep a nil
// vector.
//
// The class pool must be resolved (field and method references carry
// their target types).
func TypeFlow(c *bytecode.Class, m *bytecode.Method) ([][]bytecode.Type, error) {
	g, err := BuildCFG(m)
	if err != nil {
		return nil, err
	}
	return typeFlowOn(g, c, m)
}

func typeFlowOn(g *Graph, c *bytecode.Class, m *bytecode.Method) ([][]bytecode.Type, error) {
	in, err := Solve[[]bytecode.Type](g, &stackFlow{c: c, m: m})
	if err != nil {
		return nil, err
	}
	// Replay each reachable block once more, recording the stack at
	// every instruction.
	types := make([][]bytecode.Type, len(m.Code))
	for _, bi := range g.RPO {
		b := g.Blocks[bi]
		s := in[bi]
		if s == nil {
			s = []bytecode.Type{}
		}
		for i := b.Start; i < b.End; i++ {
			types[i] = s
			if s, err = stackStep(c, m, i, s); err != nil {
				return nil, err
			}
		}
	}
	return types, nil
}

// stackFlow is the Flow problem: facts are stack type vectors, joins
// must agree exactly.
type stackFlow struct {
	c *bytecode.Class
	m *bytecode.Method
}

func (f *stackFlow) Entry(*Graph) []bytecode.Type { return []bytecode.Type{} }

func (f *stackFlow) Transfer(g *Graph, b *Block, in []bytecode.Type) ([]bytecode.Type, error) {
	s := in
	var err error
	for i := b.Start; i < b.End; i++ {
		if s, err = stackStep(f.c, f.m, i, s); err != nil {
			return nil, err
		}
	}
	return s, nil
}

func (f *stackFlow) Join(g *Graph, b *Block, have, incoming []bytecode.Type) ([]bytecode.Type, bool, error) {
	if len(have) != len(incoming) {
		return nil, false, &posError{pc: b.Start,
			msg: fmt.Sprintf("%s @%d: inconsistent stack depth at join (%d vs %d)",
				f.m.FullName(), b.Start, len(have), len(incoming))}
	}
	for i := range have {
		if have[i] != incoming[i] {
			return nil, false, &posError{pc: b.Start,
				msg: fmt.Sprintf("%s @%d: inconsistent stack type at join slot %d (%s vs %s)",
					f.m.FullName(), b.Start, i, have[i], incoming[i])}
		}
	}
	return have, false, nil
}

// tAny is the wildcard operand type for polymorphic stack ops
// (pop/dup/swap). bytecode.TVoid never appears on the stack, so its
// value is free for the purpose.
const tAny = bytecode.TVoid

// stackStep applies one instruction to a stack type vector, checking
// operand counts and types. The input vector is never mutated.
func stackStep(c *bytecode.Class, m *bytecode.Method, i int, s []bytecode.Type) ([]bytecode.Type, error) {
	ins := m.Code[i]
	fail := func(format string, args ...any) error {
		return &posError{pc: i, msg: fmt.Sprintf("%s @%d %s: %s",
			m.FullName(), i, ins, fmt.Sprintf(format, args...))}
	}
	// pop removes len(want) operands, topmost first, checking each
	// against the wanted type (tAny matches anything). push appends.
	st := append([]bytecode.Type{}, s...)
	pop := func(want ...bytecode.Type) error {
		if len(st) < len(want) {
			return fail("stack underflow (%d < %d)", len(st), len(want))
		}
		for k, w := range want {
			got := st[len(st)-1-k]
			if w != tAny && got != w {
				return fail("operand %d is %s, want %s", k, got, w)
			}
		}
		st = st[:len(st)-len(want)]
		return nil
	}
	push := func(ts ...bytecode.Type) { st = append(st, ts...) }

	I, F, A := bytecode.TInt, bytecode.TFloat, bytecode.TRef
	var err error
	switch op := ins.Op; op {
	case bytecode.Nop, bytecode.IInc, bytecode.Goto:

	case bytecode.IConst:
		push(I)
	case bytecode.FConst:
		push(F)
	case bytecode.SConst, bytecode.AConstNull:
		push(A)
	case bytecode.ILoad:
		push(I)
	case bytecode.FLoad:
		push(F)
	case bytecode.ALoad:
		push(A)
	case bytecode.IStore:
		err = pop(I)
	case bytecode.FStore:
		err = pop(F)
	case bytecode.AStore:
		err = pop(A)

	case bytecode.Pop:
		err = pop(tAny)
	case bytecode.Dup:
		if len(st) < 1 {
			err = fail("dup on empty stack")
			break
		}
		push(st[len(st)-1])
	case bytecode.Swap:
		if len(st) < 2 {
			err = fail("swap needs two operands, have %d", len(st))
			break
		}
		st[len(st)-1], st[len(st)-2] = st[len(st)-2], st[len(st)-1]

	case bytecode.IAdd, bytecode.ISub, bytecode.IMul, bytecode.IDiv,
		bytecode.IRem, bytecode.IAnd, bytecode.IOr, bytecode.IXor,
		bytecode.IShl, bytecode.IShr, bytecode.IUshr:
		if err = pop(I, I); err == nil {
			push(I)
		}
	case bytecode.INeg:
		if err = pop(I); err == nil {
			push(I)
		}
	case bytecode.FAdd, bytecode.FSub, bytecode.FMul, bytecode.FDiv:
		if err = pop(F, F); err == nil {
			push(F)
		}
	case bytecode.FNeg:
		if err = pop(F); err == nil {
			push(F)
		}
	case bytecode.FCmp:
		if err = pop(F, F); err == nil {
			push(I)
		}
	case bytecode.I2F:
		if err = pop(I); err == nil {
			push(F)
		}
	case bytecode.F2I:
		if err = pop(F); err == nil {
			push(I)
		}

	case bytecode.NewArray:
		if err = pop(I); err == nil {
			push(A)
		}
	case bytecode.ArrayLength:
		if err = pop(A); err == nil {
			push(I)
		}
	case bytecode.IALoad, bytecode.CALoad:
		if err = pop(I, A); err == nil { // index, array
			push(I)
		}
	case bytecode.FALoad:
		if err = pop(I, A); err == nil {
			push(F)
		}
	case bytecode.AALoad:
		if err = pop(I, A); err == nil {
			push(A)
		}
	case bytecode.IAStore, bytecode.CAStore:
		err = pop(I, I, A) // value, index, array
	case bytecode.FAStore:
		err = pop(F, I, A)
	case bytecode.AAStore:
		err = pop(A, I, A)

	case bytecode.IfEq, bytecode.IfNe, bytecode.IfLt, bytecode.IfGe,
		bytecode.IfGt, bytecode.IfLe:
		err = pop(I)
	case bytecode.IfNull, bytecode.IfNonNull:
		err = pop(A)
	case bytecode.IfICmpEq, bytecode.IfICmpNe, bytecode.IfICmpLt,
		bytecode.IfICmpGe, bytecode.IfICmpGt, bytecode.IfICmpLe:
		err = pop(I, I)
	case bytecode.IfACmpEq, bytecode.IfACmpNe:
		err = pop(A, A)

	case bytecode.New:
		push(A)
	case bytecode.GetField:
		fld := c.Pool.Fields[ins.A].Resolved
		if fld == nil {
			err = fail("unresolved field reference %d", ins.A)
			break
		}
		if err = pop(A); err == nil {
			push(fld.Type)
		}
	case bytecode.PutField:
		fld := c.Pool.Fields[ins.A].Resolved
		if fld == nil {
			err = fail("unresolved field reference %d", ins.A)
			break
		}
		err = pop(fld.Type, A) // value, object
	case bytecode.GetStatic:
		fld := c.Pool.Fields[ins.A].Resolved
		if fld == nil {
			err = fail("unresolved field reference %d", ins.A)
			break
		}
		push(fld.Type)
	case bytecode.PutStatic:
		fld := c.Pool.Fields[ins.A].Resolved
		if fld == nil {
			err = fail("unresolved field reference %d", ins.A)
			break
		}
		err = pop(fld.Type)

	case bytecode.InvokeVirtual, bytecode.InvokeStatic, bytecode.InvokeSpecial:
		callee := c.Pool.Methods[ins.A].Resolved
		if callee == nil {
			err = fail("unresolved method reference %d", ins.A)
			break
		}
		if callee.IsStatic() != (op == bytecode.InvokeStatic) {
			err = fail("%s of %s method %s", op, staticness(callee), callee.FullName())
			break
		}
		// Arguments are popped last-parameter first; instance calls pop
		// the receiver beneath them.
		want := make([]bytecode.Type, 0, len(callee.Sig.Params)+1)
		for k := len(callee.Sig.Params) - 1; k >= 0; k-- {
			want = append(want, callee.Sig.Params[k])
		}
		if !callee.IsStatic() {
			want = append(want, A)
		}
		if err = pop(want...); err == nil {
			if callee.Sig.Ret != bytecode.TVoid {
				push(callee.Sig.Ret)
			}
		}

	case bytecode.Return:
		if m.Sig.Ret != bytecode.TVoid {
			err = fail("void return from method returning %s", m.Sig.Ret)
		}
	case bytecode.IReturn:
		if m.Sig.Ret != I {
			err = fail("ireturn from method returning %s", m.Sig.Ret)
			break
		}
		err = pop(I)
	case bytecode.FReturn:
		if m.Sig.Ret != F {
			err = fail("freturn from method returning %s", m.Sig.Ret)
			break
		}
		err = pop(F)
	case bytecode.AReturn:
		if m.Sig.Ret != A {
			err = fail("areturn from method returning %s", m.Sig.Ret)
			break
		}
		err = pop(A)

	case bytecode.MonitorEnter, bytecode.MonitorExit:
		err = pop(A)

	default:
		err = fail("typeflow: unhandled opcode %v", ins.Op)
	}
	if err != nil {
		return nil, err
	}
	return st, nil
}

func staticness(m *bytecode.Method) string {
	if m.IsStatic() {
		return "static"
	}
	return "instance"
}

// typecheckPass wraps TypeFlow as a CheckMethod pass.
func typecheckPass(c *bytecode.Class, m *bytecode.Method, g *Graph) []Diagnostic {
	if _, err := typeFlowOn(g, c, m); err != nil {
		return []Diagnostic{{Method: m.FullName(), PC: errPC(err), Pass: "typecheck",
			Sev: Error, Msg: err.Error()}}
	}
	return nil
}
