package analysis

import (
	"strings"
	"testing"

	"jrs/internal/bytecode"
)

// method wraps code in a one-method class "T" for checking. The sig's
// param/ret types drive NumArgs and return checking.
func method(t *testing.T, sigStr string, maxLocals int, code []bytecode.Instr) (*bytecode.Class, *bytecode.Method) {
	t.Helper()
	sig, err := bytecode.ParseSignature(sigStr)
	if err != nil {
		t.Fatal(err)
	}
	m := &bytecode.Method{Name: "m", Sig: sig, Flags: bytecode.FlagStatic,
		MaxLocals: maxLocals, Code: code}
	c := &bytecode.Class{Name: "T", Methods: []*bytecode.Method{m}}
	m.Class = c
	return c, m
}

func ins(op bytecode.Op, a ...int32) bytecode.Instr {
	i := bytecode.Instr{Op: op}
	if len(a) > 0 {
		i.A = a[0]
	}
	if len(a) > 1 {
		i.B = a[1]
	}
	return i
}

func TestCFGDiamond(t *testing.T) {
	// 0: iconst       block 0 [0,2)
	// 1: ifeq -> 4
	// 2: iconst 1     block 1 [2,4)  (fallthrough arm)
	// 3: goto -> 5
	// 4: nop          block 2 [4,5)  (taken arm)
	// 5: return       block 3 [5,6)  (join)
	_, m := method(t, "()V", 0, []bytecode.Instr{
		ins(bytecode.IConst, 0), ins(bytecode.IfEq, 4),
		ins(bytecode.IConst, 1), ins(bytecode.Goto, 5),
		ins(bytecode.Nop), ins(bytecode.Return),
	})
	g, err := BuildCFG(m)
	if err != nil {
		t.Fatal(err)
	}
	if len(g.Blocks) != 4 {
		t.Fatalf("blocks = %d, want 4", len(g.Blocks))
	}
	if got := g.Blocks[0].Succs; len(got) != 2 || got[0] != 1 || got[1] != 2 {
		t.Fatalf("entry succs = %v, want [fallthrough taken] = [1 2]", got)
	}
	if got := g.Blocks[3].Preds; len(got) != 2 {
		t.Fatalf("join preds = %v, want two", got)
	}
	if g.RPO[0] != 0 {
		t.Fatalf("RPO must start at entry, got %v", g.RPO)
	}
	seen := map[int]bool{}
	for _, b := range g.RPO {
		seen[b] = true
	}
	for bi := range g.Blocks {
		if !seen[bi] {
			t.Fatalf("block %d missing from RPO %v", bi, g.RPO)
		}
		if !g.Reachable(bi) {
			t.Fatalf("block %d should be reachable", bi)
		}
	}
	for i, bi := range g.BlockOf {
		b := g.Blocks[bi]
		if i < b.Start || i >= b.End {
			t.Fatalf("BlockOf[%d] = %d [%d,%d) does not contain it", i, bi, b.Start, b.End)
		}
	}
}

func TestCFGErrors(t *testing.T) {
	_, empty := method(t, "()V", 0, nil)
	if _, err := BuildCFG(empty); err == nil || !strings.Contains(err.Error(), "empty body") {
		t.Fatalf("empty body err = %v", err)
	}
	_, fallsOff := method(t, "()V", 0, []bytecode.Instr{ins(bytecode.Nop)})
	if _, err := BuildCFG(fallsOff); err == nil || !strings.Contains(err.Error(), "falls off") {
		t.Fatalf("fall-off err = %v", err)
	}
	_, badTarget := method(t, "()V", 0, []bytecode.Instr{ins(bytecode.Goto, 9)})
	if _, err := BuildCFG(badTarget); err == nil || !strings.Contains(err.Error(), "out of range") {
		t.Fatalf("bad target err = %v", err)
	}
}

// diag asserts exactly one finding of the pass exists and returns it.
func diag(t *testing.T, diags []Diagnostic, pass string) Diagnostic {
	t.Helper()
	var found []Diagnostic
	for _, d := range diags {
		if d.Pass == pass {
			found = append(found, d)
		}
	}
	if len(found) != 1 {
		t.Fatalf("findings for pass %s = %v, want exactly one (all: %v)", pass, found, diags)
	}
	return found[0]
}

func TestPassFindings(t *testing.T) {
	cases := []struct {
		name      string
		sig       string
		maxLocals int
		code      []bytecode.Instr
		pass      string // expected single finding's pass ("" = clean)
		pc        int
		sev       Severity
		msg       string // substring of the finding
	}{
		{
			name: "clean loop", sig: "(I)I", maxLocals: 2,
			// i=arg; acc=0; while (i != 0) { acc+=i; i-- via iinc } return acc
			code: []bytecode.Instr{
				ins(bytecode.IConst, 0), ins(bytecode.IStore, 1), // 0,1
				ins(bytecode.ILoad, 0), ins(bytecode.IfEq, 9), // 2,3
				ins(bytecode.ILoad, 1), ins(bytecode.ILoad, 0), ins(bytecode.IAdd), // 4,5,6
				ins(bytecode.IStore, 1), ins(bytecode.Goto, 2), // 7,8 (wrong: skips dec, but still terminates analysis-wise)
				ins(bytecode.ILoad, 1), ins(bytecode.IReturn), // 9,10
			},
		},
		{
			name: "stack underflow", sig: "()V", maxLocals: 0,
			code: []bytecode.Instr{ins(bytecode.Pop), ins(bytecode.Return)},
			pass: "typecheck", pc: 0, sev: Error, msg: "stack underflow",
		},
		{
			name: "operand type mismatch", sig: "()V", maxLocals: 0,
			code: []bytecode.Instr{
				ins(bytecode.IConst, 1), ins(bytecode.IConst, 2), ins(bytecode.FAdd),
				ins(bytecode.Pop), ins(bytecode.Return),
			},
			pass: "typecheck", pc: 2, sev: Error, msg: "want F",
		},
		{
			name: "stack depth join mismatch", sig: "()V", maxLocals: 0,
			// one arm leaves an int, the other nothing.
			code: []bytecode.Instr{
				ins(bytecode.IConst, 0), ins(bytecode.IfEq, 4), // 0,1
				ins(bytecode.IConst, 7), ins(bytecode.Goto, 4), // 2,3
				ins(bytecode.Return), // 4 join
			},
			pass: "typecheck", pc: 4, sev: Error, msg: "inconsistent stack depth at join",
		},
		{
			name: "stack type join mismatch", sig: "()V", maxLocals: 0,
			code: []bytecode.Instr{
				ins(bytecode.IConst, 0), ins(bytecode.IfEq, 4), // 0,1
				ins(bytecode.AConstNull), ins(bytecode.Goto, 5), // 2,3
				ins(bytecode.IConst, 7),                      // 4
				ins(bytecode.Pop), ins(bytecode.Return),      // 5 join, 6
			},
			pass: "typecheck", pc: 5, sev: Error, msg: "inconsistent stack type at join slot 0",
		},
		{
			name: "wrong return opcode", sig: "()I", maxLocals: 0,
			code: []bytecode.Instr{ins(bytecode.Return)},
			pass: "typecheck", pc: 0, sev: Error, msg: "void return from method returning I",
		},
		{
			name: "unreachable block", sig: "()V", maxLocals: 0,
			code: []bytecode.Instr{
				ins(bytecode.Goto, 3), // 0
				ins(bytecode.Nop), ins(bytecode.Nop), // 1,2 dead
				ins(bytecode.Return), // 3
			},
			pass: "reachability", pc: 1, sev: Warning, msg: "unreachable code: instructions 1..2 (2 dead)",
		},
		{
			name: "use before assign straight-line", sig: "()V", maxLocals: 1,
			code: []bytecode.Instr{
				ins(bytecode.ILoad, 0), ins(bytecode.Pop), ins(bytecode.Return),
			},
			pass: "definite-assignment", pc: 0, sev: Error, msg: "local 0 may be read before assignment",
		},
		{
			name: "use before assign on one path", sig: "(I)V", maxLocals: 2,
			// slot 1 assigned only on the fallthrough arm, read after join.
			code: []bytecode.Instr{
				ins(bytecode.ILoad, 0), ins(bytecode.IfEq, 4), // 0,1
				ins(bytecode.IConst, 7), ins(bytecode.IStore, 1), // 2,3
				ins(bytecode.ILoad, 1), ins(bytecode.Pop), ins(bytecode.Return), // 4,5,6
			},
			pass: "definite-assignment", pc: 4, sev: Error, msg: "local 1 may be read before assignment",
		},
		{
			name: "param slots assigned at entry", sig: "(IF)I", maxLocals: 3,
			code: []bytecode.Instr{
				ins(bytecode.ILoad, 0), ins(bytecode.IReturn),
			},
		},
		{
			name: "monitorexit without enter", sig: "()V", maxLocals: 0,
			code: []bytecode.Instr{
				ins(bytecode.AConstNull), ins(bytecode.MonitorExit), ins(bytecode.Return),
			},
			pass: "monitor-balance", pc: 1, sev: Error, msg: "monitorexit without a matching monitorenter",
		},
		{
			name: "return with monitor held", sig: "()V", maxLocals: 0,
			code: []bytecode.Instr{
				ins(bytecode.AConstNull), ins(bytecode.MonitorEnter), ins(bytecode.Return),
			},
			pass: "monitor-balance", pc: 2, sev: Error, msg: "return with 1 monitor(s) still held",
		},
		{
			name: "unbalanced monitors at join", sig: "(I)V", maxLocals: 1,
			// fallthrough arm enters a monitor, taken arm does not.
			code: []bytecode.Instr{
				ins(bytecode.ILoad, 0), ins(bytecode.IfEq, 4), // 0,1
				ins(bytecode.AConstNull), ins(bytecode.MonitorEnter), // 2,3
				ins(bytecode.Return), // 4 join
			},
			pass: "monitor-balance", pc: 4, sev: Error, msg: "unbalanced monitors at join (0 vs 1 held)",
		},
		{
			name: "balanced monitors", sig: "(I)V", maxLocals: 1,
			code: []bytecode.Instr{
				ins(bytecode.AConstNull), ins(bytecode.MonitorEnter),
				ins(bytecode.AConstNull), ins(bytecode.MonitorExit),
				ins(bytecode.Return),
			},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			c, m := method(t, tc.sig, tc.maxLocals, tc.code)
			diags := CheckMethod(c, m)
			if tc.pass == "" {
				if len(diags) != 0 {
					t.Fatalf("want clean, got %v", diags)
				}
				return
			}
			d := diag(t, diags, tc.pass)
			if d.PC != tc.pc {
				t.Errorf("pc = %d, want %d (%s)", d.PC, tc.pc, d)
			}
			if d.Sev != tc.sev {
				t.Errorf("severity = %s, want %s (%s)", d.Sev, tc.sev, d)
			}
			if !strings.Contains(d.Msg, tc.msg) {
				t.Errorf("msg = %q, want substring %q", d.Msg, tc.msg)
			}
			if d.Method != "T.m"+tc.sig {
				t.Errorf("method = %q, want %q", d.Method, "T.m"+tc.sig)
			}
		})
	}
}

// TestCheckMethodOrdering: multiple findings come out sorted by (pc,
// pass) so lint reports are deterministic.
func TestCheckMethodOrdering(t *testing.T) {
	c, m := method(t, "()V", 1, []bytecode.Instr{
		ins(bytecode.Goto, 2),  // 0
		ins(bytecode.Nop),      // 1 dead block
		ins(bytecode.ILoad, 0), // 2 read-before-assign
		ins(bytecode.Pop), ins(bytecode.Return),
	})
	diags := CheckMethod(c, m)
	if len(diags) != 2 {
		t.Fatalf("findings = %v, want 2", diags)
	}
	if diags[0].Pass != "reachability" || diags[0].PC != 1 {
		t.Fatalf("first finding = %v, want reachability @1", diags[0])
	}
	if diags[1].Pass != "definite-assignment" || diags[1].PC != 2 {
		t.Fatalf("second finding = %v, want definite-assignment @2", diags[1])
	}
	if len(Errors(diags)) != 1 {
		t.Fatalf("Errors() = %v, want just the definite-assignment finding", Errors(diags))
	}
	r := Render(diags)
	if !strings.Contains(r, "T.m()V @1: [reachability] warning: unreachable code") {
		t.Fatalf("render = %q", r)
	}
}

// TestTypeFlowVectors: the per-instruction stack vectors the JIT
// consumes reflect entry stacks, and dead instructions keep nil.
func TestTypeFlowVectors(t *testing.T) {
	c, m := method(t, "()F", 0, []bytecode.Instr{
		ins(bytecode.IConst, 1),  // 0: entry stack []
		ins(bytecode.I2F),        // 1: [I]
		ins(bytecode.FReturn),    // 2: [F]
		ins(bytecode.Nop),        // 3: dead
		ins(bytecode.Goto, 3),    // 4: dead
	})
	types, err := TypeFlow(c, m)
	if err != nil {
		t.Fatal(err)
	}
	if len(types[0]) != 0 {
		t.Fatalf("entry stack = %v, want empty", types[0])
	}
	if len(types[1]) != 1 || types[1][0] != bytecode.TInt {
		t.Fatalf("stack before i2f = %v, want [I]", types[1])
	}
	if len(types[2]) != 1 || types[2][0] != bytecode.TFloat {
		t.Fatalf("stack before freturn = %v, want [F]", types[2])
	}
	if types[3] != nil || types[4] != nil {
		t.Fatalf("dead instructions should have nil vectors, got %v / %v", types[3], types[4])
	}
	if MaxStackDepth(types) != 1 {
		t.Fatalf("MaxStackDepth = %d, want 1", MaxStackDepth(types))
	}
}

// TestInvokeChecking: argument/receiver popping and the
// static-vs-instance mode check against a resolved pool.
func TestInvokeChecking(t *testing.T) {
	callee := &bytecode.Method{Name: "f", Flags: bytecode.FlagStatic, MaxLocals: 2}
	var err error
	callee.Sig, err = bytecode.ParseSignature("(IF)I")
	if err != nil {
		t.Fatal(err)
	}
	mk := func(code []bytecode.Instr) (*bytecode.Class, *bytecode.Method) {
		c, m := method(t, "()V", 0, code)
		callee.Class = c
		c.Pool.AddMethod("T", "f", "(IF)I")
		c.Pool.Methods[0].Resolved = callee
		return c, m
	}

	c, m := mk([]bytecode.Instr{
		ins(bytecode.IConst, 1), ins(bytecode.FConst, 0), // args in order
		ins(bytecode.InvokeStatic, 0), ins(bytecode.Pop), ins(bytecode.Return),
	})
	// FConst needs a pool entry for structural verification.
	c.Pool.AddFloat(1.5)
	if diags := CheckMethod(c, m); len(diags) != 0 {
		t.Fatalf("clean invoke reported %v", diags)
	}

	c, m = mk([]bytecode.Instr{
		ins(bytecode.IConst, 1), ins(bytecode.IConst, 2), // wrong: second arg int
		ins(bytecode.InvokeStatic, 0), ins(bytecode.Pop), ins(bytecode.Return),
	})
	d := diag(t, CheckMethod(c, m), "typecheck")
	if !strings.Contains(d.Msg, "want F") {
		t.Fatalf("mistyped arg msg = %q", d.Msg)
	}

	c, m = mk([]bytecode.Instr{
		ins(bytecode.IConst, 1), ins(bytecode.FConst, 0),
		ins(bytecode.InvokeVirtual, 0), ins(bytecode.Pop), ins(bytecode.Return),
	})
	c.Pool.AddFloat(1.5)
	d = diag(t, CheckMethod(c, m), "typecheck")
	if !strings.Contains(d.Msg, "invokevirtual of static method") {
		t.Fatalf("mode mismatch msg = %q", d.Msg)
	}
}

// TestStructurallyBroken: bodies bytecode.Verify rejects come back as a
// single "structure" diagnostic instead of panicking any pass.
func TestStructurallyBroken(t *testing.T) {
	c, m := method(t, "()V", 0, []bytecode.Instr{ins(bytecode.ILoad, 3), ins(bytecode.Return)})
	diags := CheckMethod(c, m)
	if len(diags) != 1 || diags[0].Pass != "structure" || diags[0].Sev != Error {
		t.Fatalf("diags = %v, want one structure error", diags)
	}
}

func TestPassNames(t *testing.T) {
	want := []string{"typecheck", "reachability", "definite-assignment", "monitor-balance"}
	got := PassNames()
	if len(got) != len(want) {
		t.Fatalf("PassNames() = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("PassNames() = %v, want %v", got, want)
		}
	}
}
