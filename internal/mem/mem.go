// Package mem defines the simulated flat address space shared by every
// execution engine, and a word-granular sparse memory for data storage.
//
// The segment layout mirrors a JVM process image: the interpreter's
// handler code, the JIT translator's own code, runtime services, the JIT
// code cache, class metadata (where bytecodes live and are read as *data*
// by the interpreter and the translator), the garbage-collected heap,
// per-thread Java stacks, and VM-internal structures such as the monitor
// cache. Keeping every engine in one address space is what lets the cache
// studies observe effects like translated-code installation writes landing
// in the D-cache while subsequent fetches hit the I-cache.
package mem

import "fmt"

// Segment base addresses. Segments are far apart so no workload can
// overflow one into the next; the cache simulators only see addresses, so
// sparseness is free.
const (
	// HandlerBase is the interpreter's dispatch-loop and per-opcode
	// handler code region (instruction side only).
	HandlerBase uint64 = 0x0001_0000
	// TranslatorBase is the JIT translator's code region.
	TranslatorBase uint64 = 0x0010_0000
	// RuntimeBase is the VM runtime services code region (allocation,
	// monitors, class resolution, I/O intrinsics).
	RuntimeBase uint64 = 0x0020_0000
	// CodeCacheBase is where the JIT installs translated native code.
	// Installation writes are data stores to these addresses; execution
	// fetches are instruction reads from them.
	CodeCacheBase uint64 = 0x0100_0000
	// ClassBase is class metadata: bytecode streams, constant pools,
	// method tables. Interpreter and translator read bytecodes from here
	// as data.
	ClassBase uint64 = 0x0800_0000
	// HeapBase is the object heap.
	HeapBase uint64 = 0x1000_0000
	// StackBase is the bottom of the Java thread stack area; each thread
	// gets a StackSize window.
	StackBase uint64 = 0x4000_0000
	// StackSize is the per-thread stack window.
	StackSize uint64 = 1 << 20
	// VMBase is VM-internal data: monitor cache, thread blocks, JIT
	// bookkeeping.
	VMBase uint64 = 0x6000_0000
)

// SegmentOf names the segment containing addr, for diagnostics.
func SegmentOf(addr uint64) string {
	switch {
	case addr >= VMBase:
		return "vm"
	case addr >= StackBase:
		return "stack"
	case addr >= HeapBase:
		return "heap"
	case addr >= ClassBase:
		return "class"
	case addr >= CodeCacheBase:
		return "codecache"
	case addr >= RuntimeBase:
		return "runtime"
	case addr >= TranslatorBase:
		return "translator"
	case addr >= HandlerBase:
		return "handler"
	}
	return "low"
}

// ThreadStackBase returns the stack window base for thread id.
func ThreadStackBase(id int) uint64 {
	return StackBase + uint64(id)*StackSize
}

// Memory is a sparse 64-bit-word-addressable store backing the simulated
// data space. Pages are allocated on demand. Addresses are byte
// addresses; loads and stores below word width are modeled at word
// granularity for value storage (byte stores keep a full word per byte
// address slot), which is fine because the architecture simulators care
// about addresses, not packing.
type Memory struct {
	pages map[uint64]*page
	// bytePages backs byte-granular storage (char arrays) separately so
	// packed byte addresses don't alias word slots.
	bytePages map[uint64]*bytePage
	// Footprint counts distinct pages touched, an input to the Table 1
	// memory-requirement study.
	touched int
	// Watch, when set, observes every functional access on either plane
	// (the race-detection oracle hooks in here). It must not call back
	// into Memory.
	Watch func(addr uint64, write bool)
}

const (
	pageShift = 12
	pageWords = 1 << (pageShift - 3) // 512 words of 8 bytes
)

type page struct {
	words [pageWords]int64
}

type bytePage struct {
	bytes [1 << pageShift]byte
}

// New returns an empty memory.
func New() *Memory {
	return &Memory{
		pages:     make(map[uint64]*page),
		bytePages: make(map[uint64]*bytePage),
	}
}

func (m *Memory) pageFor(addr uint64, create bool) *page {
	pn := addr >> pageShift
	p := m.pages[pn]
	if p == nil && create {
		p = &page{}
		m.pages[pn] = p
		m.touched++
	}
	return p
}

// Load returns the 64-bit word at byte address addr (word-aligned access
// assumed by convention: the VM allocates all slots 8 bytes apart).
func (m *Memory) Load(addr uint64) int64 {
	if m.Watch != nil {
		m.Watch(addr, false)
	}
	p := m.pageFor(addr, false)
	if p == nil {
		return 0
	}
	return p.words[(addr>>3)%pageWords]
}

// Peek reads the word at addr without notifying Watch and without
// touching pages — oracle-style inspection (the -checkelide
// re-validation) that must not perturb race detection or footprint.
func (m *Memory) Peek(addr uint64) int64 {
	p := m.pageFor(addr, false)
	if p == nil {
		return 0
	}
	return p.words[(addr>>3)%pageWords]
}

// Store writes the 64-bit word at byte address addr.
func (m *Memory) Store(addr uint64, v int64) {
	if m.Watch != nil {
		m.Watch(addr, true)
	}
	p := m.pageFor(addr, true)
	p.words[(addr>>3)%pageWords] = v
}

// LoadByte returns the byte at addr from the byte-granular plane (used
// for char arrays, whose packed addressing matters to the cache studies).
func (m *Memory) LoadByte(addr uint64) byte {
	if m.Watch != nil {
		m.Watch(addr, false)
	}
	p := m.bytePages[addr>>pageShift]
	if p == nil {
		return 0
	}
	return p.bytes[addr&((1<<pageShift)-1)]
}

// StoreByte writes the byte at addr on the byte-granular plane.
func (m *Memory) StoreByte(addr uint64, v byte) {
	if m.Watch != nil {
		m.Watch(addr, true)
	}
	pn := addr >> pageShift
	p := m.bytePages[pn]
	if p == nil {
		p = &bytePage{}
		m.bytePages[pn] = p
		m.touched++
	}
	p.bytes[addr&((1<<pageShift)-1)] = v
}

// FootprintBytes returns the total size of pages touched so far. This is
// the resident-set proxy used by the Table 1 reproduction.
func (m *Memory) FootprintBytes() uint64 {
	return uint64(m.touched) << pageShift
}

// Reset drops all contents.
func (m *Memory) Reset() {
	m.pages = make(map[uint64]*page)
	m.bytePages = make(map[uint64]*bytePage)
	m.touched = 0
}

// String summarizes the memory for debugging.
func (m *Memory) String() string {
	return fmt.Sprintf("mem{%d pages, %d KB}", m.touched, m.FootprintBytes()>>10)
}
