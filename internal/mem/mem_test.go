package mem

import (
	"testing"
	"testing/quick"
)

func TestLoadStoreWords(t *testing.T) {
	m := New()
	if m.Load(HeapBase) != 0 {
		t.Fatal("fresh memory should read zero")
	}
	m.Store(HeapBase, 42)
	m.Store(HeapBase+8, -7)
	if m.Load(HeapBase) != 42 || m.Load(HeapBase+8) != -7 {
		t.Fatal("word round trip")
	}
	// Overwrite.
	m.Store(HeapBase, 100)
	if m.Load(HeapBase) != 100 {
		t.Fatal("overwrite")
	}
}

func TestBytePlane(t *testing.T) {
	m := New()
	// Adjacent byte addresses must not alias each other or words.
	m.StoreByte(HeapBase+24, 'a')
	m.StoreByte(HeapBase+25, 'b')
	m.Store(HeapBase+24, 999)
	if m.LoadByte(HeapBase+24) != 'a' || m.LoadByte(HeapBase+25) != 'b' {
		t.Fatal("byte plane aliased")
	}
	if m.Load(HeapBase+24) != 999 {
		t.Fatal("word plane clobbered")
	}
	if m.LoadByte(HeapBase+26) != 0 {
		t.Fatal("untouched byte should be zero")
	}
}

func TestFootprintGrows(t *testing.T) {
	m := New()
	f0 := m.FootprintBytes()
	m.Store(HeapBase, 1)
	f1 := m.FootprintBytes()
	if f1 <= f0 {
		t.Fatal("footprint should grow on first touch")
	}
	m.Store(HeapBase+8, 2) // same page
	if m.FootprintBytes() != f1 {
		t.Fatal("same-page store should not grow footprint")
	}
	m.Store(HeapBase+1<<20, 3)
	if m.FootprintBytes() <= f1 {
		t.Fatal("distant store should grow footprint")
	}
}

func TestReset(t *testing.T) {
	m := New()
	m.Store(HeapBase, 5)
	m.StoreByte(HeapBase+100, 9)
	m.Reset()
	if m.Load(HeapBase) != 0 || m.LoadByte(HeapBase+100) != 0 {
		t.Fatal("reset should clear")
	}
	if m.FootprintBytes() != 0 {
		t.Fatal("reset should clear footprint")
	}
}

func TestSegmentOf(t *testing.T) {
	cases := map[uint64]string{
		HandlerBase:    "handler",
		TranslatorBase: "translator",
		RuntimeBase:    "runtime",
		CodeCacheBase:  "codecache",
		ClassBase:      "class",
		HeapBase:       "heap",
		StackBase:      "stack",
		VMBase:         "vm",
		0x10:           "low",
	}
	for addr, want := range cases {
		if got := SegmentOf(addr); got != want {
			t.Errorf("SegmentOf(%#x) = %q, want %q", addr, got, want)
		}
	}
}

func TestThreadStackBase(t *testing.T) {
	if ThreadStackBase(0) != StackBase {
		t.Error("thread 0 base")
	}
	if ThreadStackBase(2)-ThreadStackBase(1) != StackSize {
		t.Error("thread stride")
	}
}

// Property: last-write-wins per address, words and bytes independent.
func TestMemoryLastWriteWinsProperty(t *testing.T) {
	f := func(writes []struct {
		Off uint16
		Val int64
	}) bool {
		m := New()
		want := map[uint64]int64{}
		for _, w := range writes {
			addr := HeapBase + uint64(w.Off&^7) // word-aligned
			m.Store(addr, w.Val)
			want[addr] = w.Val
		}
		for addr, v := range want {
			if m.Load(addr) != v {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestString(t *testing.T) {
	m := New()
	m.Store(HeapBase, 1)
	if s := m.String(); s == "" {
		t.Error("String should describe memory")
	}
}
