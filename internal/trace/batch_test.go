package trace

import (
	"reflect"
	"testing"
	"testing/quick"
)

// recorder keeps the full stream and how it was partitioned into
// batches, to check both order and delivery granularity.
type recorder struct {
	insts   []Inst
	batches []int // length of each EmitBatch call; -1 marks a unit Emit
}

func (r *recorder) Emit(in Inst) {
	r.insts = append(r.insts, in)
	r.batches = append(r.batches, -1)
}

func (r *recorder) EmitBatch(batch []Inst) {
	r.insts = append(r.insts, batch...)
	r.batches = append(r.batches, len(batch))
}

// legacyRecorder only implements Sink, to exercise the unroll fallback.
type legacyRecorder struct{ insts []Inst }

func (r *legacyRecorder) Emit(in Inst) { r.insts = append(r.insts, in) }

func seqInsts(n int) []Inst {
	out := make([]Inst, n)
	for i := range out {
		out[i] = Inst{PC: uint64(i), Class: Class(i % int(NumClasses))}
	}
	return out
}

func TestTeeFlattensNestedTees(t *testing.T) {
	var a, b, c, d Counter
	nested := Tee(&a, Tee(&b, Tee(&c, &d)))
	tt, ok := nested.(*tee)
	if !ok {
		t.Fatalf("Tee of 4 sinks is %T, want *tee", nested)
	}
	if len(tt.sinks) != 4 {
		t.Fatalf("nested tee has %d members after flattening, want 4", len(tt.sinks))
	}
	for i, want := range []Sink{&a, &b, &c, &d} {
		if tt.sinks[i] != want {
			t.Errorf("member %d not inlined in construction order", i)
		}
	}
	nested.Emit(Inst{Class: ALU})
	for i, cnt := range []*Counter{&a, &b, &c, &d} {
		if cnt.Total != 1 {
			t.Errorf("member %d missed the fanned-out instruction", i)
		}
	}
}

func TestTeeFlatteningKeepsDegenerateCollapse(t *testing.T) {
	var a Counter
	if Tee(Tee(&a)) != Sink(&a) {
		t.Error("tee of single-collapsed tee should collapse")
	}
	if Tee(Tee(), Tee()) != Discard {
		t.Error("tee of empty tees should be Discard")
	}
}

func TestBatcherFlushesFixedBatchesInOrder(t *testing.T) {
	rec := &recorder{}
	b := NewBatcher(rec, 4)
	in := seqInsts(10)
	for _, i := range in {
		b.Add(i)
	}
	if got := b.Pending(); got != 2 {
		t.Fatalf("pending = %d, want 2", got)
	}
	b.Flush()
	b.Flush() // idempotent when empty
	if !reflect.DeepEqual(rec.insts, in) {
		t.Fatalf("stream reordered or lost: got %d insts", len(rec.insts))
	}
	if want := []int{4, 4, 2}; !reflect.DeepEqual(rec.batches, want) {
		t.Fatalf("batch partition = %v, want %v", rec.batches, want)
	}
}

// TestBatcherPendingCompensatesClock pins the invariant core.Engine.now
// relies on: a downstream counter's Total plus the batcher's Pending()
// is the exact number of instructions emitted so far, at every point in
// the stream, for any batch size.
func TestBatcherPendingCompensatesClock(t *testing.T) {
	var clock Counter
	b := NewBatcher(&clock, 4)
	for n, in := range seqInsts(11) {
		b.Add(in)
		if got := clock.Total + uint64(b.Pending()); got != uint64(n)+1 {
			t.Fatalf("after %d adds: Total(%d)+Pending(%d) = %d", n+1, clock.Total, b.Pending(), got)
		}
	}
	b.Flush()
	if clock.Total != 11 || b.Pending() != 0 {
		t.Fatalf("after flush: Total = %d, Pending = %d", clock.Total, b.Pending())
	}
}

func TestBatcherEmitBatchPreservesOrderAroundBuffered(t *testing.T) {
	rec := &recorder{}
	b := NewBatcher(rec, 8)
	in := seqInsts(7)
	b.Add(in[0])
	b.Add(in[1])
	b.EmitBatch(in[2:6])
	b.Add(in[6])
	b.Flush()
	if !reflect.DeepEqual(rec.insts, in) {
		t.Fatalf("order across Add/EmitBatch interleave broken")
	}
}

func TestEmitBatchToUnrollsForLegacySinks(t *testing.T) {
	leg := &legacyRecorder{}
	in := seqInsts(6)
	EmitBatchTo(leg, in)
	if !reflect.DeepEqual(leg.insts, in) {
		t.Fatalf("legacy unroll lost or reordered instructions")
	}
	EmitBatchTo(leg, nil) // empty batch is a no-op
	if len(leg.insts) != 6 {
		t.Fatal("empty batch changed stream")
	}
}

func TestSwitchableEmitBatch(t *testing.T) {
	var c Counter
	sw := &Switchable{}
	sw.EmitBatch(seqInsts(3)) // dropped: no destination
	sw.S = &c
	sw.EmitBatch(seqInsts(3))
	if c.Total != 3 {
		t.Fatalf("switchable batch: %d, want 3", c.Total)
	}
}

// Property: Counter.EmitBatch over any partition of a stream equals
// per-instruction Emit of the same stream.
func TestCounterEmitBatchEquivalenceProperty(t *testing.T) {
	f := func(classes []uint8, cut uint8) bool {
		in := make([]Inst, len(classes))
		for i, b := range classes {
			in[i] = Inst{
				Class: Class(b % uint8(NumClasses)),
				Phase: Phase(b % uint8(NumPhases)),
			}
		}
		var one, batched Counter
		for _, i := range in {
			one.Emit(i)
		}
		k := 0
		if len(in) > 0 {
			k = int(cut) % (len(in) + 1)
		}
		batched.EmitBatch(in[:k])
		batched.EmitBatch(in[k:])
		return one == batched
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: a Batcher of any size delivers exactly the input stream.
func TestBatcherDeliveryProperty(t *testing.T) {
	f := func(pcs []uint16, size uint8) bool {
		b := NewBatcher(&recorder{}, int(size%32)+1)
		rec := b.out.(*recorder)
		var want []Inst
		for _, pc := range pcs {
			in := Inst{PC: uint64(pc)}
			want = append(want, in)
			b.Add(in)
		}
		b.Flush()
		return reflect.DeepEqual(rec.insts, want) ||
			(len(rec.insts) == 0 && len(want) == 0)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestNewBatcherDefaults(t *testing.T) {
	b := NewBatcher(nil, 0)
	if b.Cap() != BatchSize {
		t.Fatalf("default capacity = %d, want BatchSize (%d)", b.Cap(), BatchSize)
	}
	b.Add(Inst{}) // must not panic with Discard downstream
	b.Flush()
}
