package trace

// This file implements the batched trace transport. Shade — the tracing
// tool the paper's methodology is built on — did not deliver trace
// records to analyzers one at a time: it filled a user-supplied buffer
// of trace records and handed the analyzer whole batches, amortizing the
// per-record delivery cost over the buffer length. The same structure is
// reproduced here: producers append instructions to a Batcher's buffer
// with a concrete (devirtualized) call, and consumers receive fixed-size
// []Inst batches through the BatchSink interface, paying the interface
// dispatch, fan-out and phase-bookkeeping costs once per batch instead
// of once per simulated instruction.

// DefaultBatchSize is the delivery buffer capacity engines use unless
// overridden. Large enough to amortize dispatch, small enough that a
// batch of Inst records (64 bytes each) stays L1/L2-resident in the
// *host* cache while the consumers walk it.
const DefaultBatchSize = 1024

// BatchSize is the process-wide default batch capacity picked up by
// engines whose configuration does not set one explicitly. Setting it
// to 1 (the cmd/jrs -nobatch escape hatch) restores per-instruction
// delivery while keeping the single code path.
var BatchSize = DefaultBatchSize

// BatchSink is the batched counterpart of Sink. EmitBatch receives one
// or more instructions in program order; the slice is only valid for
// the duration of the call (the transport reuses its buffer), so
// implementations must not retain it.
//
// Batch boundaries carry no meaning: a stream delivered as any
// partition into batches must produce byte-identical simulation results
// to the same stream delivered per-instruction. Flush points at phase
// switches, engine mode switches and end-of-run only affect *when*
// instructions arrive, never their order or content.
type BatchSink interface {
	EmitBatch([]Inst)
}

// EmitBatchTo delivers batch to s in order, using the native batch
// entry point when s implements BatchSink and unrolling into
// per-instruction Emit calls otherwise (the legacy-sink fallback).
func EmitBatchTo(s Sink, batch []Inst) {
	if len(batch) == 0 {
		return
	}
	if bs, ok := s.(BatchSink); ok {
		bs.EmitBatch(batch)
		return
	}
	for i := range batch {
		s.Emit(batch[i])
	}
}

// Batcher ring-buffers per-instruction emits and flushes fixed-size
// batches downstream. It is the engine-side half of the transport: all
// of an engine's emitters share one Batcher so the merged stream stays
// in exact program order, and the engine flushes at observation
// boundaries (sink swaps, end of run).
//
// Add is deliberately tiny — a buffer store, an increment and a
// capacity check — so it inlines into the producers' emit paths; every
// downstream cost (the engine clock included) is paid per batch at
// Flush. Clock-style consumers that need an exact mid-run instruction
// count add Pending() to their flushed total (core.Engine.now does).
//
// A Batcher is not safe for concurrent use; each simulated engine owns
// one (the parallel harness gives every cell its own engine).
type Batcher struct {
	out Sink
	buf []Inst
	n   int
}

// NewBatcher builds a batcher delivering to out (nil = Discard) in
// batches of size (<=0 selects the BatchSize default).
func NewBatcher(out Sink, size int) *Batcher {
	if out == nil {
		out = Discard
	}
	if size <= 0 {
		size = BatchSize
	}
	if size < 1 {
		size = 1
	}
	return &Batcher{out: out, buf: make([]Inst, size)}
}

// Add appends one instruction, flushing when the buffer fills. This is
// the hot path of the whole simulator grid: a concrete, inlinable
// buffer append replacing what used to be several interface dispatches
// per instruction.
func (b *Batcher) Add(in Inst) {
	b.buf[b.n] = in
	b.n++
	if b.n == len(b.buf) {
		b.Flush()
	}
}

// Emit implements Sink.
func (b *Batcher) Emit(in Inst) { b.Add(in) }

// EmitBatch implements BatchSink: buffered instructions flush first so
// order is preserved, then the incoming batch is forwarded whole.
func (b *Batcher) EmitBatch(batch []Inst) {
	if len(batch) == 0 {
		return
	}
	b.Flush()
	EmitBatchTo(b.out, batch)
}

// Flush delivers any buffered instructions downstream. Engines call it
// at observation boundaries: before a Switchable swap (the AOT
// precompile window), at engine mode switches, and at end-of-run —
// every point where a consumer or the harness is about to look at
// downstream state.
func (b *Batcher) Flush() {
	if b.n == 0 {
		return
	}
	n := b.n
	b.n = 0
	EmitBatchTo(b.out, b.buf[:n])
}

// Pending returns the number of buffered, undelivered instructions.
func (b *Batcher) Pending() int { return b.n }

// Cap returns the batch capacity.
func (b *Batcher) Cap() int { return len(b.buf) }
