package trace

import "testing"

// benchStream builds a representative instruction mix: mostly ALU and
// memory traffic with a sprinkling of control transfers, as the
// simulated engines emit it.
func benchStream(n int) []Inst {
	out := make([]Inst, n)
	for i := range out {
		in := Inst{PC: uint64(i) * 4, Phase: PhaseExec}
		switch i % 8 {
		case 0:
			in.Class = Load
			in.Addr = uint64(i) * 8
		case 1:
			in.Class = Store
			in.Addr = uint64(i) * 8
		case 7:
			in.Class = Branch
			in.Taken = i%16 == 7
			in.Target = uint64(i) * 2
		default:
			in.Class = ALU
		}
		out[i] = in
	}
	return out
}

// BenchmarkTraceTransportEmit is the legacy per-instruction interface
// path into a Counter.
func BenchmarkTraceTransportEmit(b *testing.B) {
	stream := benchStream(4096)
	var c Counter
	var s Sink = &c
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := range stream {
			s.Emit(stream[j])
		}
	}
}

// BenchmarkTraceTransportEmitBatch delivers the same stream through one
// EmitBatch dispatch per buffer.
func BenchmarkTraceTransportEmitBatch(b *testing.B) {
	stream := benchStream(4096)
	var c Counter
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.EmitBatch(stream)
	}
}

// BenchmarkTraceTransportBatcher measures the producer side as the
// engine wires it: the inlinable Add fast path filling
// DefaultBatchSize buffers that flush into a clock + sink fan-out.
func BenchmarkTraceTransportBatcher(b *testing.B) {
	stream := benchStream(4096)
	var clock, c Counter
	bt := NewBatcher(Tee(&clock, &c), DefaultBatchSize)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := range stream {
			bt.Add(stream[j])
		}
	}
	bt.Flush()
}

// BenchmarkTraceTransportTeeEmit fans each instruction out to four
// counters through the per-instruction interface.
func BenchmarkTraceTransportTeeEmit(b *testing.B) {
	stream := benchStream(4096)
	var c [4]Counter
	s := Tee(&c[0], &c[1], &c[2], &c[3])
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := range stream {
			s.Emit(stream[j])
		}
	}
}

// BenchmarkTraceTransportTeeEmitBatch fans whole buffers out to four
// counters: one dispatch per member per batch instead of per
// instruction.
func BenchmarkTraceTransportTeeEmitBatch(b *testing.B) {
	stream := benchStream(4096)
	var c [4]Counter
	s := Tee(&c[0], &c[1], &c[2], &c[3])
	bs := s.(BatchSink)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bs.EmitBatch(stream)
	}
}
