package trace

import (
	"testing"
	"testing/quick"
)

func TestClassPredicates(t *testing.T) {
	cases := []struct {
		c        Class
		mem      bool
		control  bool
		indirect bool
	}{
		{ALU, false, false, false},
		{FPU, false, false, false},
		{Load, true, false, false},
		{Store, true, false, false},
		{Branch, false, true, false},
		{Jump, false, true, false},
		{Call, false, true, false},
		{Ret, false, true, true},
		{IndirectJump, false, true, true},
		{IndirectCall, false, true, true},
	}
	for _, tc := range cases {
		if got := tc.c.IsMem(); got != tc.mem {
			t.Errorf("%v.IsMem() = %v", tc.c, got)
		}
		if got := tc.c.IsControl(); got != tc.control {
			t.Errorf("%v.IsControl() = %v", tc.c, got)
		}
		if got := tc.c.IsIndirect(); got != tc.indirect {
			t.Errorf("%v.IsIndirect() = %v", tc.c, got)
		}
	}
}

func TestClassStrings(t *testing.T) {
	seen := map[string]bool{}
	for c := Class(0); c < NumClasses; c++ {
		s := c.String()
		if s == "" || s == "unknown" {
			t.Errorf("class %d has no name", c)
		}
		if seen[s] {
			t.Errorf("duplicate class name %q", s)
		}
		seen[s] = true
	}
}

func TestCounter(t *testing.T) {
	var c Counter
	c.Emit(Inst{Class: Load, Phase: PhaseExec})
	c.Emit(Inst{Class: Store, Phase: PhaseTranslate})
	c.Emit(Inst{Class: ALU, Phase: PhaseExec})
	c.Emit(Inst{Class: IndirectJump, Phase: PhaseExec})

	if c.Total != 4 {
		t.Fatalf("total = %d", c.Total)
	}
	if got := c.MemFrac(); got != 0.5 {
		t.Errorf("mem frac = %v", got)
	}
	if got := c.IndirectFrac(); got != 0.25 {
		t.Errorf("indirect frac = %v", got)
	}
	if got := c.ControlFrac(); got != 0.25 {
		t.Errorf("control frac = %v", got)
	}
	if c.ByPhase(PhaseTranslate) != 1 {
		t.Errorf("translate phase count = %d", c.ByPhase(PhaseTranslate))
	}
	c.Reset()
	if c.Total != 0 || c.ByClass(Load) != 0 {
		t.Error("reset did not clear")
	}
}

// Property: counter class totals always sum to Total.
func TestCounterSumsProperty(t *testing.T) {
	f := func(classes []uint8) bool {
		var c Counter
		for _, b := range classes {
			c.Emit(Inst{Class: Class(b % uint8(NumClasses))})
		}
		var sum uint64
		for cl := Class(0); cl < NumClasses; cl++ {
			sum += c.ByClass(cl)
		}
		return sum == c.Total && c.Total == uint64(len(classes))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestTee(t *testing.T) {
	var a, b Counter
	sink := Tee(&a, nil, &b)
	sink.Emit(Inst{Class: ALU})
	sink.Emit(Inst{Class: Load})
	if a.Total != 2 || b.Total != 2 {
		t.Fatalf("tee fanout: %d, %d", a.Total, b.Total)
	}
	// Degenerate cases.
	if Tee() != Discard {
		t.Error("empty tee should be Discard")
	}
	if Tee(&a) != Sink(&a) {
		t.Error("single tee should collapse")
	}
	Discard.Emit(Inst{}) // must not panic
}

func TestSwitchable(t *testing.T) {
	var c Counter
	sw := &Switchable{}
	sw.Emit(Inst{Class: ALU}) // dropped
	sw.S = &c
	sw.Emit(Inst{Class: ALU})
	if c.Total != 1 {
		t.Fatalf("switchable: %d", c.Total)
	}
}

func TestSinkFunc(t *testing.T) {
	n := 0
	s := SinkFunc(func(Inst) { n++ })
	s.Emit(Inst{})
	if n != 1 {
		t.Fatal("SinkFunc not invoked")
	}
}

func TestPhaseString(t *testing.T) {
	if PhaseExec.String() != "exec" || PhaseTranslate.String() != "translate" ||
		PhaseLoad.String() != "load" {
		t.Error("phase names wrong")
	}
}
