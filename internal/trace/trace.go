// Package trace defines the native-instruction event stream that every
// architectural simulator in this repository consumes.
//
// It plays the role Shade played in the paper: each simulated native
// instruction retired by any execution engine (interpreter templates, JIT
// translator, JIT-generated code, AOT code) is emitted exactly once as an
// Inst record to a Sink. Simulators (instruction-mix counters, cache
// models, branch predictors, the superscalar pipeline) attach as sinks and
// observe the same stream a hardware tracer would.
package trace

// Class is the architectural class of a native instruction. The classes
// mirror the categories the paper reports in its instruction-mix study
// (Figure 2): ALU, FPU, loads, stores, conditional branches, direct
// jumps/calls, returns, and register-indirect jumps/calls.
type Class uint8

const (
	// ALU is an integer arithmetic/logic instruction.
	ALU Class = iota
	// FPU is a floating-point instruction.
	FPU
	// Load is a memory read; Inst.Addr holds the effective address.
	Load
	// Store is a memory write; Inst.Addr holds the effective address.
	Store
	// Branch is a conditional direct branch; Taken and Target are valid.
	Branch
	// Jump is an unconditional direct jump; Target is valid.
	Jump
	// Call is a direct call; Target is valid.
	Call
	// Ret is a function return (indirect transfer through the link
	// register); Target is valid.
	Ret
	// IndirectJump is a register-indirect jump (e.g. the interpreter's
	// switch dispatch); Target is valid.
	IndirectJump
	// IndirectCall is a register-indirect call (e.g. a virtual method
	// dispatch through a table); Target is valid.
	IndirectCall
	// NumClasses is the number of instruction classes.
	NumClasses
)

// String returns the lower-case mnemonic name of the class.
func (c Class) String() string {
	switch c {
	case ALU:
		return "alu"
	case FPU:
		return "fpu"
	case Load:
		return "load"
	case Store:
		return "store"
	case Branch:
		return "branch"
	case Jump:
		return "jump"
	case Call:
		return "call"
	case Ret:
		return "ret"
	case IndirectJump:
		return "ijump"
	case IndirectCall:
		return "icall"
	}
	return "unknown"
}

// IsMem reports whether the class accesses data memory.
func (c Class) IsMem() bool { return c == Load || c == Store }

// IsControl reports whether the class is a control transfer.
func (c Class) IsControl() bool { return c >= Branch && c <= IndirectCall }

// IsIndirect reports whether the transfer target comes from a register
// (unpredictable without a BTB-style structure).
func (c Class) IsIndirect() bool {
	return c == Ret || c == IndirectJump || c == IndirectCall
}

// Phase tags which part of the runtime produced an instruction, so the
// cache studies can isolate the translate portion of JIT execution the way
// the paper does in Figure 5.
type Phase uint8

const (
	// PhaseExec covers application execution: interpreter dispatch and
	// handlers, JIT-generated code, AOT code, and runtime services called
	// on their behalf.
	PhaseExec Phase = iota
	// PhaseTranslate covers the JIT translator: bytecode walking, code
	// generation and installation.
	PhaseTranslate
	// PhaseLoad covers class loading and resolution.
	PhaseLoad
	// NumPhases is the number of phases.
	NumPhases
)

// String returns the name of the phase.
func (p Phase) String() string {
	switch p {
	case PhaseExec:
		return "exec"
	case PhaseTranslate:
		return "translate"
	case PhaseLoad:
		return "load"
	}
	return "unknown"
}

// Inst is one retired native instruction. It carries everything the
// downstream simulators need: the PC (for the I-cache and predictors), the
// class, the effective address for memory operations, the control-flow
// target and outcome, and the architectural registers for dependence
// modeling in the pipeline simulator.
type Inst struct {
	// PC is the address of the instruction itself.
	PC uint64
	// Addr is the effective data address for Load/Store.
	Addr uint64
	// Target is the (resolved) destination for control transfers.
	Target uint64
	// Class is the architectural class.
	Class Class
	// Phase tags the producing runtime component.
	Phase Phase
	// Taken reports the outcome for conditional branches (always true
	// for unconditional transfers).
	Taken bool
	// Src1, Src2 and Dst are architectural register numbers (RegNone if
	// unused) used by the pipeline model for dependences.
	Src1, Src2, Dst uint8
}

// RegNone marks an unused register slot in an Inst.
const RegNone uint8 = 0xFF

// Sink receives the instruction stream. Emit is called once per retired
// instruction in program order per simulated core.
type Sink interface {
	Emit(Inst)
}

// SinkFunc adapts a function to the Sink interface.
type SinkFunc func(Inst)

// Emit calls f(i).
func (f SinkFunc) Emit(i Inst) { f(i) }

// Discard is a Sink that drops every instruction. Useful for running an
// engine purely for its architectural side counters.
var Discard Sink = discard{}

type discard struct{}

// Emit implements Sink by dropping the instruction.
func (discard) Emit(Inst) {}

// EmitBatch implements BatchSink by dropping the batch.
func (discard) EmitBatch([]Inst) {}

// Tee fans the stream out to several sinks in order. A nil or Discard
// entry is skipped, and a member that is itself a Tee is flattened: its
// members are inlined in place, so arbitrarily nested Tee construction
// always yields a single fan-out level (one dispatch per member per
// batch, not one per nesting level). Tee of zero or one live sinks
// collapses to the trivial sink.
func Tee(sinks ...Sink) Sink {
	live := make([]Sink, 0, len(sinks))
	for _, s := range sinks {
		switch m := s.(type) {
		case nil:
			continue
		case discard:
			continue
		case *tee:
			live = append(live, m.sinks...)
		default:
			live = append(live, s)
		}
	}
	switch len(live) {
	case 0:
		return Discard
	case 1:
		return live[0]
	}
	return &tee{sinks: live}
}

type tee struct{ sinks []Sink }

// Emit implements Sink, fanning the instruction to every member.
func (t *tee) Emit(i Inst) {
	for _, s := range t.sinks {
		s.Emit(i)
	}
}

// EmitBatch implements BatchSink, fanning the whole batch to every
// member (members that only implement Sink receive it unrolled).
func (t *tee) EmitBatch(batch []Inst) {
	for _, s := range t.sinks {
		EmitBatchTo(s, batch)
	}
}

// Switchable is a Sink whose destination can be swapped mid-run. The
// harness uses it to exclude phases from measurement — e.g. the AOT
// ("C/C++-like") configuration precompiles every method while S is nil
// and only then attaches the simulators, so the measured trace contains
// pure native execution the way a compiled C program's would.
type Switchable struct{ S Sink }

// Emit implements Sink.
func (s *Switchable) Emit(i Inst) {
	if s.S != nil {
		s.S.Emit(i)
	}
}

// EmitBatch implements BatchSink. Engines flush their transport before
// the destination is swapped, so a batch is never split across two
// destinations and the swap point stays an exact observation boundary.
func (s *Switchable) EmitBatch(batch []Inst) {
	if s.S != nil {
		EmitBatchTo(s.S, batch)
	}
}

// Counter is a Sink that accumulates the instruction-mix statistics the
// paper reports in Figure 2, split by phase. Only the full
// (class, phase) matrix is maintained on the hot path — one increment
// per instruction — and the per-class / per-phase marginals are summed
// from it on demand.
type Counter struct {
	// Total is the number of instructions observed.
	Total uint64
	// ByClassPhase counts instructions per (class, phase).
	ByClassPhase [NumClasses][NumPhases]uint64
}

// Emit implements Sink.
func (c *Counter) Emit(i Inst) {
	c.Total++
	c.ByClassPhase[i.Class][i.Phase]++
}

// EmitBatch implements BatchSink, accumulating the whole batch with one
// dispatch.
func (c *Counter) EmitBatch(batch []Inst) {
	c.Total += uint64(len(batch))
	for i := range batch {
		in := &batch[i]
		c.ByClassPhase[in.Class][in.Phase]++
	}
}

// ByClass returns the number of instructions observed in class cl.
func (c *Counter) ByClass(cl Class) uint64 {
	var n uint64
	for p := Phase(0); p < NumPhases; p++ {
		n += c.ByClassPhase[cl][p]
	}
	return n
}

// ByPhase returns the number of instructions observed in phase p.
func (c *Counter) ByPhase(p Phase) uint64 {
	var n uint64
	for cl := Class(0); cl < NumClasses; cl++ {
		n += c.ByClassPhase[cl][p]
	}
	return n
}

// Reset zeroes the counter.
func (c *Counter) Reset() { *c = Counter{} }

// Frac returns the fraction of the stream in class cl, or 0 when empty.
func (c *Counter) Frac(cl Class) float64 {
	if c.Total == 0 {
		return 0
	}
	return float64(c.ByClass(cl)) / float64(c.Total)
}

// MemFrac returns the fraction of instructions that access data memory.
func (c *Counter) MemFrac() float64 {
	if c.Total == 0 {
		return 0
	}
	return float64(c.ByClass(Load)+c.ByClass(Store)) / float64(c.Total)
}

// ControlFrac returns the fraction of instructions that transfer control.
func (c *Counter) ControlFrac() float64 {
	if c.Total == 0 {
		return 0
	}
	var n uint64
	for cl := Branch; cl <= IndirectCall; cl++ {
		n += c.ByClass(cl)
	}
	return float64(n) / float64(c.Total)
}

// IndirectFrac returns the fraction of instructions that are indirect
// control transfers (returns, indirect jumps, indirect calls).
func (c *Counter) IndirectFrac() float64 {
	if c.Total == 0 {
		return 0
	}
	n := c.ByClass(Ret) + c.ByClass(IndirectJump) + c.ByClass(IndirectCall)
	return float64(n) / float64(c.Total)
}
