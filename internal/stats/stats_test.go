package stats

import (
	"strings"
	"testing"
)

func TestTableAlignment(t *testing.T) {
	tb := NewTable("Title", "name", "value")
	tb.AddRow("short", "1")
	tb.AddRow("muchlongername", "22")
	tb.Note("a note with %d", 5)
	out := tb.String()
	if !strings.Contains(out, "Title") {
		t.Error("missing title")
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	// Title, header, rule, 2 rows, note.
	if len(lines) != 6 {
		t.Fatalf("lines = %d:\n%s", len(lines), out)
	}
	// Column 2 should start at the same offset in both rows.
	i1 := strings.Index(lines[3], "1")
	i2 := strings.Index(lines[4], "22")
	if i1 != i2 {
		t.Errorf("columns misaligned: %d vs %d\n%s", i1, i2, out)
	}
	if !strings.Contains(out, "a note with 5") {
		t.Error("note missing")
	}
}

func TestTableRaggedRows(t *testing.T) {
	tb := NewTable("", "a", "b")
	tb.AddRow("x")
	tb.AddRow("y", "z", "extra")
	out := tb.String()
	if !strings.Contains(out, "extra") {
		t.Error("extra cell dropped")
	}
}

func TestFormatters(t *testing.T) {
	if Pct(0.1234) != "12.3%" {
		t.Errorf("Pct: %s", Pct(0.1234))
	}
	if F2(1.005) == "" || F3(0.5) != "0.500" {
		t.Error("float formatters")
	}
	cases := map[uint64]string{
		5:          "5",
		9_999:      "9999",
		50_000:     "50K",
		1_500_000:  "1.5M",
		25_000_000: "25M",
	}
	for in, want := range cases {
		if got := Count(in); got != want {
			t.Errorf("Count(%d) = %q, want %q", in, got, want)
		}
	}
	if KB(2048) != "2KB" {
		t.Errorf("KB: %s", KB(2048))
	}
}

func TestSparkline(t *testing.T) {
	s := Series{Points: []float64{0, 1, 2, 3}}
	sl := s.Sparkline()
	if len([]rune(sl)) != 4 {
		t.Fatalf("sparkline runes: %q", sl)
	}
	runes := []rune(sl)
	if runes[0] >= runes[3] {
		t.Error("sparkline should ascend")
	}
	if (Series{}).Sparkline() != "" {
		t.Error("empty series")
	}
	flat := Series{Points: []float64{5, 5, 5}}
	if len([]rune(flat.Sparkline())) != 3 {
		t.Error("flat series length")
	}
}
