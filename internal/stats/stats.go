// Package stats provides the table formatting and small numeric helpers
// used by the experiment harness to render the paper's tables and figures
// as text.
package stats

import (
	"fmt"
	"strings"
)

// Table is a simple column-aligned text table.
type Table struct {
	Title   string
	Headers []string
	Rows    [][]string
	// Notes are printed under the table.
	Notes []string
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, headers ...string) *Table {
	return &Table{Title: title, Headers: headers}
}

// AddRow appends a row; cells beyond the header count are kept, shorter
// rows are padded.
func (t *Table) AddRow(cells ...string) *Table {
	t.Rows = append(t.Rows, cells)
	return t
}

// Note appends a footnote line.
func (t *Table) Note(format string, args ...any) *Table {
	t.Notes = append(t.Notes, fmt.Sprintf(format, args...))
	return t
}

// String renders the table.
func (t *Table) String() string {
	cols := len(t.Headers)
	for _, r := range t.Rows {
		if len(r) > cols {
			cols = len(r)
		}
	}
	widths := make([]int, cols)
	cell := func(r []string, i int) string {
		if i < len(r) {
			return r[i]
		}
		return ""
	}
	for i := 0; i < cols; i++ {
		if i < len(t.Headers) && len(t.Headers[i]) > widths[i] {
			widths[i] = len(t.Headers[i])
		}
		for _, r := range t.Rows {
			if len(cell(r, i)) > widths[i] {
				widths[i] = len(cell(r, i))
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		b.WriteString(t.Title)
		b.WriteByte('\n')
	}
	line := func(r []string) {
		for i := 0; i < cols; i++ {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell(r, i))
		}
		b.WriteByte('\n')
	}
	if len(t.Headers) > 0 {
		line(t.Headers)
		total := 0
		for i, w := range widths {
			if i > 0 {
				total += 2
			}
			total += w
		}
		b.WriteString(strings.Repeat("-", total))
		b.WriteByte('\n')
	}
	for _, r := range t.Rows {
		line(r)
	}
	for _, n := range t.Notes {
		b.WriteString("  note: ")
		b.WriteString(n)
		b.WriteByte('\n')
	}
	return b.String()
}

// Pct formats a fraction as a percentage.
func Pct(f float64) string { return fmt.Sprintf("%.1f%%", 100*f) }

// F2 formats with two decimals.
func F2(f float64) string { return fmt.Sprintf("%.2f", f) }

// F3 formats with three decimals.
func F3(f float64) string { return fmt.Sprintf("%.3f", f) }

// Count formats a count with M/K suffixes the way the paper's Table 3
// reports reference counts.
func Count(n uint64) string {
	switch {
	case n >= 10_000_000:
		return fmt.Sprintf("%dM", n/1_000_000)
	case n >= 1_000_000:
		return fmt.Sprintf("%.1fM", float64(n)/1e6)
	case n >= 10_000:
		return fmt.Sprintf("%dK", n/1000)
	default:
		return fmt.Sprint(n)
	}
}

// KB formats a byte count in KB.
func KB(n uint64) string { return fmt.Sprintf("%dKB", n>>10) }

// Series is a labeled sequence of float values (a figure's line).
type Series struct {
	Label  string
	Points []float64
}

// Sparkline renders the series as a compact unicode bar strip, giving the
// text reports a visual for the figure-shaped results.
func (s Series) Sparkline() string {
	if len(s.Points) == 0 {
		return ""
	}
	min, max := s.Points[0], s.Points[0]
	for _, p := range s.Points {
		if p < min {
			min = p
		}
		if p > max {
			max = p
		}
	}
	levels := []rune("▁▂▃▄▅▆▇█")
	var b strings.Builder
	for _, p := range s.Points {
		idx := 0
		if max > min {
			idx = int((p - min) / (max - min) * float64(len(levels)-1))
		}
		b.WriteRune(levels[idx])
	}
	return b.String()
}
