// Package rt defines the control-transfer protocol between the execution
// engines (interpreter, native CPU) and the mixed-mode trampoline in
// internal/core.
//
// Neither engine recurses into method calls: executing an invoke, return,
// blocking monitor operation or thread primitive suspends the engine and
// surfaces a Trap. The trampoline owns all frames, which is what makes
// mixed interpret/compile execution (the paper's §3 subject) a first-class
// citizen rather than a special case.
package rt

import "jrs/internal/bytecode"

// Kind discriminates trap reasons.
type Kind int

// Trap kinds.
const (
	// TrapNone means the quantum expired; reschedule and continue.
	TrapNone Kind = iota
	// TrapCall requests invocation of Target with Args (receiver first
	// for instance methods). The trapping frame has already advanced
	// past the call site.
	TrapCall
	// TrapReturn ends the current frame, optionally carrying Val.
	TrapReturn
	// TrapBlock means a monitorenter could not take the lock on Obj;
	// the instruction will re-execute when the thread wakes.
	TrapBlock
	// TrapSpawn requests a new thread running Args[0]'s run() method;
	// the spawner receives the thread id as the operation's result.
	TrapSpawn
	// TrapJoin waits for thread id Args[0] to finish.
	TrapJoin
	// TrapYield voluntarily ends the quantum.
	TrapYield
)

// String names the kind.
func (k Kind) String() string {
	switch k {
	case TrapNone:
		return "none"
	case TrapCall:
		return "call"
	case TrapReturn:
		return "return"
	case TrapBlock:
		return "block"
	case TrapSpawn:
		return "spawn"
	case TrapJoin:
		return "join"
	case TrapYield:
		return "yield"
	}
	return "unknown"
}

// Trap is the engine→trampoline message.
type Trap struct {
	Kind   Kind
	Target *bytecode.Method
	Args   []int64
	// Val / HasVal carry a return value for TrapReturn.
	Val    int64
	HasVal bool
	// Obj is the monitor object for TrapBlock.
	Obj uint64
	// Virtual marks TrapCall sites that dispatched through a vtable
	// (engine statistics only).
	Virtual bool
}
