package rt

import "testing"

func TestKindStrings(t *testing.T) {
	want := map[Kind]string{
		TrapNone:   "none",
		TrapCall:   "call",
		TrapReturn: "return",
		TrapBlock:  "block",
		TrapSpawn:  "spawn",
		TrapJoin:   "join",
		TrapYield:  "yield",
	}
	for k, s := range want {
		if k.String() != s {
			t.Errorf("%d.String() = %q, want %q", k, k.String(), s)
		}
	}
	if Kind(99).String() != "unknown" {
		t.Error("out-of-range kind")
	}
}

func TestZeroTrapIsNone(t *testing.T) {
	var tr Trap
	if tr.Kind != TrapNone {
		t.Fatal("zero trap must mean TrapNone (engines rely on it)")
	}
}
