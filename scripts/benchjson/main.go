// Command benchjson converts `go test -bench` text output (stdin) into
// a labeled entry of a JSON benchmark log. The raw benchmark lines are
// kept verbatim inside the entry, so any entry can be replayed through
// benchstat:
//
//	jq -r '.entries[] | select(.label=="baseline") | .raw[]' BENCH_X.json > old.txt
//	jq -r '.entries[] | select(.label=="batched")  | .raw[]' BENCH_X.json > new.txt
//	benchstat old.txt new.txt
//
// Re-running with an existing label replaces that entry in place.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
)

// Metric is one value/unit pair from a benchmark line (ns/op, B/op, …).
type Metric struct {
	Value float64 `json:"value"`
	Unit  string  `json:"unit"`
}

// Benchmark is one parsed result line.
type Benchmark struct {
	Name    string   `json:"name"`
	Iters   int64    `json:"iters"`
	Metrics []Metric `json:"metrics"`
}

// Entry is one labeled benchmark run.
type Entry struct {
	Label      string      `json:"label"`
	Commit     string      `json:"commit,omitempty"`
	Note       string      `json:"note,omitempty"`
	Benchmarks []Benchmark `json:"benchmarks"`
	// Raw holds the verbatim `go test -bench` lines (header + results)
	// in benchstat's input format.
	Raw []string `json:"raw"`
}

// Log is the whole BENCH_<date>.json file.
type Log struct {
	Entries []Entry `json:"entries"`
}

func parseLine(line string) (Benchmark, bool) {
	fields := strings.Fields(line)
	if len(fields) < 3 || !strings.HasPrefix(fields[0], "Benchmark") {
		return Benchmark{}, false
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Benchmark{}, false
	}
	b := Benchmark{Name: fields[0], Iters: iters}
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			break
		}
		b.Metrics = append(b.Metrics, Metric{Value: v, Unit: fields[i+1]})
	}
	return b, true
}

func main() {
	label := flag.String("label", "dev", "entry label (replaces an existing entry with the same label)")
	commit := flag.String("commit", "", "commit hash the run measured")
	note := flag.String("note", "", "free-form note stored with the entry")
	out := flag.String("out", "", "JSON log file to create or update (required)")
	flag.Parse()
	if *out == "" {
		fmt.Fprintln(os.Stderr, "benchjson: -out is required")
		os.Exit(2)
	}

	entry := Entry{Label: *label, Commit: *commit, Note: *note}
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := strings.TrimRight(sc.Text(), "\r\n")
		switch {
		case strings.HasPrefix(line, "Benchmark"):
			if b, ok := parseLine(line); ok {
				entry.Benchmarks = append(entry.Benchmarks, b)
				entry.Raw = append(entry.Raw, line)
			}
		case strings.HasPrefix(line, "goos:"),
			strings.HasPrefix(line, "goarch:"),
			strings.HasPrefix(line, "pkg:"),
			strings.HasPrefix(line, "cpu:"):
			entry.Raw = append(entry.Raw, line)
		}
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	if len(entry.Benchmarks) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark lines on stdin")
		os.Exit(1)
	}

	var log Log
	if data, err := os.ReadFile(*out); err == nil {
		if err := json.Unmarshal(data, &log); err != nil {
			fmt.Fprintf(os.Stderr, "benchjson: %s exists but is not a benchmark log: %v\n", *out, err)
			os.Exit(1)
		}
	}
	replaced := false
	for i := range log.Entries {
		if log.Entries[i].Label == entry.Label {
			log.Entries[i] = entry
			replaced = true
			break
		}
	}
	if !replaced {
		log.Entries = append(log.Entries, entry)
	}

	data, err := json.MarshalIndent(log, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	if err := os.WriteFile(*out, append(data, '\n'), 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	fmt.Printf("benchjson: wrote entry %q (%d benchmarks) to %s\n", entry.Label, len(entry.Benchmarks), *out)
}
