#!/usr/bin/env bash
# bench.sh — run the grid macro-benchmarks and the trace-transport
# micro-benchmarks, recording the results as a labeled entry in
# BENCH_<date>.json (benchstat-replayable via the entry's raw lines;
# see scripts/benchjson).
#
# Usage: scripts/bench.sh [label] [count]
#   label  entry label in the JSON log (default: dev)
#   count  -count passed to go test (default: 3)
#
# The label "dist" is a mode: it runs only the distributed-vs-parallel
# grid pair (a loopback jrsd coordinator + local workers against the
# shared-memory parallel runner) and records the comparison as a `dist`
# entry — the number to watch is BenchmarkGridDist's overhead relative
# to BenchmarkGridParallel at the same worker count.
set -euo pipefail
cd "$(dirname "$0")/.."

label="${1:-dev}"
count="${2:-3}"
out="BENCH_$(date +%F).json"
commit="$(git rev-parse --short HEAD 2>/dev/null || true)"
tmp="$(mktemp)"
trap 'rm -f "$tmp"' EXIT

if [ "$label" = "dist" ]; then
  echo "== distributed vs parallel grid (count=$count) =="
  go test -run '^$' -bench 'BenchmarkGrid(Parallel|Dist)$' -benchmem -count "$count" -timeout 120m . | tee -a "$tmp"
else
  echo "== grid macro-benchmarks (count=$count) =="
  go test -run '^$' -bench 'BenchmarkGrid' -benchmem -count "$count" -timeout 120m . | tee -a "$tmp"

  echo "== trace-transport micro-benchmarks (count=$count) =="
  go test ./internal/trace -run '^$' -bench TraceTransport -benchmem -count "$count" | tee -a "$tmp"
fi

go run ./scripts/benchjson -label "$label" -commit "$commit" -out "$out" < "$tmp"
