package main

import (
	"jrs/internal/cache"
	"jrs/internal/pipeline"
	"jrs/internal/trace"
)

func newPaperCaches() trace.Sink { return cache.PaperDefault() }

func newPipeline() trace.Sink { return pipeline.New(pipeline.DefaultConfig(4)) }
