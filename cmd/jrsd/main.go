// Command jrsd is the distributed grid service for the paper
// experiments: a coordinator that leases simulation cells to workers
// over TCP and merges their results deterministically, and the worker
// that executes them. The merged output is byte-identical to a serial
// `jrs` run of the same grid — workers crashing, hanging, dropping
// connections or delivering duplicates along the way included.
//
// Usage:
//
//	jrsd serve  [flags]                 run a coordinator
//	jrsd worker [flags] -connect ADDR   run a worker against a coordinator
//	jrsd inproc [flags] <experiment|all>
//	                                    loopback smoke: coordinator + N
//	                                    in-process workers + one submit,
//	                                    output on stdout (CI's vehicle)
//
// Flags (shared unless noted):
//
//	-listen ADDR   serve: listen address (default 127.0.0.1:0; the bound
//	               address is printed to stderr)
//	-connect ADDR  worker: coordinator address (required)
//	-name S        worker: stable worker identity (default host-pid)
//	-workers N     inproc: in-process worker count (default 3)
//	-lease D       serve/inproc: lease TTL before a silent worker's cell
//	               is re-queued (default 10s)
//	-retries N     re-attempts per cell after a retryable failure
//	-keepgoing     degraded mode: drain every cell, render what
//	               succeeded, print a run report; exit 3 on failures
//	-cachedir D    persist per-cell results + run journal under D
//	-resume        trust the journal under -cachedir: journaled cells
//	               are served from the cache (continue a crashed run)
//	-celltimeout D worker/inproc: watchdog deadline per cell attempt
//	-chaos SPEC    worker/inproc: cell fault injection
//	               (seed=N,panic=P,hang=P,err=P,upto=K,cell=S)
//	-netchaos SPEC worker/inproc: network fault injection
//	               (seed=N,drop=P,delay=P,dup=P,kill=P,maxdelay=D)
//	-scale N, -quick, -w names, -checkpipe
//	               grid options, as in jrs (inproc submit)
//
// Exit codes: 0 healthy, 1 run or connection error, 2 usage,
// 3 degraded (-keepgoing with failed cells).
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"net"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"time"

	"jrs/internal/harness"
	"jrs/internal/harness/chaos"
	"jrs/internal/harness/dist"
	"jrs/internal/workloads"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is the testable entry point.
func run(args []string, stdout, stderr io.Writer) int {
	if len(args) < 1 {
		usage(stderr)
		return 2
	}
	cmd, args := args[0], args[1:]

	fs := flag.NewFlagSet("jrsd "+cmd, flag.ContinueOnError)
	fs.SetOutput(stderr)
	listen := fs.String("listen", "127.0.0.1:0", "coordinator listen address")
	connect := fs.String("connect", "", "coordinator address to connect to (worker)")
	name := fs.String("name", "", "worker identity (default host-pid)")
	nworkers := fs.Int("workers", 3, "in-process worker count (inproc)")
	lease := fs.Duration("lease", 10*time.Second, "lease TTL before a silent worker's cell re-queues")
	retries := fs.Int("retries", 0, "re-attempts per cell after a retryable failure")
	keepgoing := fs.Bool("keepgoing", false, "drain all cells despite failures; report and exit 3")
	cachedir := fs.String("cachedir", "", "directory for the persistent result cache and journal")
	resume := fs.Bool("resume", false, "resume an interrupted run from the -cachedir journal")
	celltimeout := fs.Duration("celltimeout", 0, "watchdog deadline per cell attempt (0 = none)")
	chaosSpec := fs.String("chaos", "", "cell fault-injection spec (worker side)")
	netSpec := fs.String("netchaos", "", "network fault-injection spec (worker side)")
	scale := fs.Int("scale", 0, "workload input scale (0 = workload default)")
	quick := fs.Bool("quick", false, "use reduced benchmark scales")
	wsel := fs.String("w", "", "comma-separated workload subset")
	checkpipe := fs.Bool("checkpipe", false, "attach the pipeline invariant checker to every superscalar core")
	verbose := fs.Bool("v", false, "log protocol progress to stderr")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	logf := func(string, ...any) {}
	if *verbose {
		logf = func(format string, a ...any) { fmt.Fprintf(stderr, format+"\n", a...) }
	}

	switch cmd {
	case "serve":
		return serve(coordConfig{
			lease: *lease, retries: *retries, keepgoing: *keepgoing,
			cachedir: *cachedir, resume: *resume, logf: logf,
		}, *listen, stderr)

	case "worker":
		if *connect == "" {
			fmt.Fprintln(stderr, "jrsd: worker requires -connect ADDR")
			return 2
		}
		w, code := buildWorker(*name, *connect, *celltimeout, *chaosSpec, *netSpec, logf, stderr)
		if code != 0 {
			return code
		}
		ctx, cancel := signal.NotifyContext(context.Background(), os.Interrupt)
		defer cancel()
		w.Run(ctx)
		return 0

	case "inproc":
		if fs.NArg() < 1 {
			fmt.Fprintln(stderr, "jrsd: inproc requires an experiment name (or \"all\")")
			return 2
		}
		opts, code := gridOptions(*scale, *quick, *checkpipe, *wsel, stderr)
		if code != 0 {
			return code
		}
		return inproc(coordConfig{
			lease: *lease, retries: *retries, keepgoing: *keepgoing,
			cachedir: *cachedir, resume: *resume, logf: logf,
		}, *nworkers, *celltimeout, *chaosSpec, *netSpec,
			dist.GridSpec{Experiments: fs.Args(), Opts: opts},
			stdout, stderr)

	default:
		fmt.Fprintf(stderr, "jrsd: unknown command %q\n", cmd)
		usage(stderr)
		return 2
	}
}

// coordConfig is the flag subset that parameterizes a coordinator.
type coordConfig struct {
	lease     time.Duration
	retries   int
	keepgoing bool
	cachedir  string
	resume    bool
	logf      func(string, ...any)
}

// newCoordinator wires cache + journal (when -cachedir is set) into a
// coordinator. The coordinator owns the journal: Stop releases its
// writer lock.
func newCoordinator(cc coordConfig, stderr io.Writer) (*dist.Coordinator, int) {
	cfg := dist.Config{
		LeaseTTL:    cc.lease,
		Retries:     cc.retries,
		KeepGoing:   cc.keepgoing,
		BackoffBase: 100 * time.Millisecond,
		Resume:      cc.resume,
		Logf:        cc.logf,
	}
	if cc.resume && cc.cachedir == "" {
		fmt.Fprintln(stderr, "jrsd: -resume requires -cachedir (the journal lives there)")
		return nil, 2
	}
	if cc.cachedir != "" {
		cache, err := harness.OpenResultCache(cc.cachedir)
		if err != nil {
			fmt.Fprintf(stderr, "jrsd: %v\n", err)
			return nil, 1
		}
		journal, err := harness.OpenJournal(filepath.Join(cc.cachedir, harness.JournalName))
		if err != nil {
			fmt.Fprintf(stderr, "jrsd: %v\n", err)
			return nil, 1
		}
		cfg.Cache, cfg.Journal = cache, journal
	}
	return dist.NewCoordinator(cfg), 0
}

// serve runs a standalone coordinator until interrupted.
func serve(cc coordConfig, listen string, stderr io.Writer) int {
	c, code := newCoordinator(cc, stderr)
	if code != 0 {
		return code
	}
	addr, err := c.Start(listen)
	if err != nil {
		fmt.Fprintf(stderr, "jrsd: %v\n", err)
		return 1
	}
	fmt.Fprintf(stderr, "jrsd: coordinator listening on %s\n", addr)
	ctx, cancel := signal.NotifyContext(context.Background(), os.Interrupt)
	defer cancel()
	<-ctx.Done()
	c.Stop()
	return 0
}

// buildWorker assembles a worker from its flags.
func buildWorker(name, connect string, celltimeout time.Duration, chaosSpec, netSpec string, logf func(string, ...any), stderr io.Writer) (*dist.Worker, int) {
	if name == "" {
		host, _ := os.Hostname()
		if host == "" {
			host = "worker"
		}
		name = fmt.Sprintf("%s-%d", host, os.Getpid())
	}
	w := &dist.Worker{
		Name:        name,
		Dial:        func() (net.Conn, error) { return net.DialTimeout("tcp", connect, 10*time.Second) },
		CellTimeout: celltimeout,
		Logf:        logf,
	}
	if chaosSpec != "" {
		spec, err := chaos.ParseSpec(chaosSpec)
		if err != nil {
			fmt.Fprintf(stderr, "jrsd: %v\n", err)
			return nil, 2
		}
		w.Chaos = chaos.New(spec)
	}
	if netSpec != "" {
		spec, err := chaos.ParseNetSpec(netSpec)
		if err != nil {
			fmt.Fprintf(stderr, "jrsd: %v\n", err)
			return nil, 2
		}
		w.Net = chaos.NewNet(spec)
	}
	return w, 0
}

// gridOptions assembles the submitted grid's option spec.
func gridOptions(scale int, quick, checkpipe bool, wsel string, stderr io.Writer) (dist.OptionsSpec, int) {
	opts := dist.OptionsSpec{Scale: scale, Quick: quick, CheckPipe: checkpipe}
	if wsel != "" {
		for _, name := range strings.Split(wsel, ",") {
			name = strings.TrimSpace(name)
			if _, ok := workloads.ByName(name); !ok {
				fmt.Fprintf(stderr, "jrsd: unknown workload %q\n", name)
				return opts, 1
			}
			opts.Workloads = append(opts.Workloads, name)
		}
	}
	return opts, 0
}

// inproc runs the whole service in one process — coordinator, N
// workers, one submitted grid — and prints the merged output. It is the
// loopback smoke CI diffs against a serial jrs run; every worker gets
// its own chaos injectors (distinct seeds derived per worker index) so
// faults don't strike all workers identically.
func inproc(cc coordConfig, nworkers int, celltimeout time.Duration, chaosSpec, netSpec string, grid dist.GridSpec, stdout, stderr io.Writer) int {
	if nworkers < 1 {
		nworkers = 1
	}
	c, code := newCoordinator(cc, stderr)
	if code != 0 {
		return code
	}
	addr, err := c.Start("127.0.0.1:0")
	if err != nil {
		fmt.Fprintf(stderr, "jrsd: %v\n", err)
		return 1
	}
	defer c.Stop()

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	for i := 0; i < nworkers; i++ {
		w, code := buildWorker(fmt.Sprintf("w%d", i+1), addr, celltimeout, chaosSpec, netSpec, cc.logf, stderr)
		if code != 0 {
			return code
		}
		// Distinct per-worker seeds: identical injector state on every
		// worker would fault the same cells in lockstep.
		if w.Chaos != nil && chaosSpec != "" {
			spec, _ := chaos.ParseSpec(chaosSpec)
			spec.Seed += int64(i) * 1000003
			w.Chaos = chaos.New(spec)
		}
		if w.Net != nil && netSpec != "" {
			spec, _ := chaos.ParseNetSpec(netSpec)
			spec.Seed += int64(i) * 1000003
			w.Net = chaos.NewNet(spec)
		}
		go w.Run(ctx)
	}

	out, err := dist.Submit(addr, grid, 0)
	if err != nil {
		fmt.Fprintf(stderr, "jrsd: %v\n", err)
		return 1
	}
	if out.ErrMsg != "" {
		fmt.Fprintf(stderr, "jrsd: %s\n", out.ErrMsg)
	}
	fmt.Fprint(stdout, out.Output)
	fmt.Fprint(stdout, out.Report)
	return out.ExitCode
}

func usage(stderr io.Writer) {
	fmt.Fprint(stderr, `jrsd — fault-tolerant distributed grid execution for the jrs experiments

usage:
  jrsd serve  [flags]                   coordinator
  jrsd worker [flags] -connect ADDR     worker
  jrsd inproc [flags] <experiment|all>  loopback smoke (coordinator + workers + submit)

run "jrsd <command> -h" for flags.
`)
}
