package main

import (
	"bytes"
	"strings"
	"testing"

	"jrs/internal/harness"
)

// TestUnknownExperiment checks the CLI exits non-zero and lists every
// registered experiment when given a bogus name.
func TestUnknownExperiment(t *testing.T) {
	var out, errb bytes.Buffer
	code := run([]string{"fig99"}, &out, &errb)
	if code == 0 {
		t.Fatalf("run(fig99) exit code = 0, want non-zero")
	}
	msg := errb.String()
	if !strings.Contains(msg, `unknown experiment "fig99"`) {
		t.Errorf("stderr missing unknown-experiment message:\n%s", msg)
	}
	for _, name := range harness.Names() {
		if !strings.Contains(msg, name) {
			t.Errorf("stderr usage listing missing experiment %q", name)
		}
	}
	if out.Len() != 0 {
		t.Errorf("stdout not empty on error: %q", out.String())
	}
}

// TestUnknownWorkload checks -w validation.
func TestUnknownWorkload(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-w", "nosuch", "fig1"}, &out, &errb); code == 0 {
		t.Fatalf("run(-w nosuch) exit code = 0, want non-zero")
	}
	if !strings.Contains(errb.String(), `unknown workload "nosuch"`) {
		t.Errorf("stderr = %q, want unknown-workload message", errb.String())
	}
}

// TestNoArgsUsage checks the bare invocation prints usage and fails.
func TestNoArgsUsage(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run(nil, &out, &errb); code != 2 {
		t.Fatalf("run() exit code = %d, want 2", code)
	}
	if !strings.Contains(errb.String(), "usage:") {
		t.Errorf("stderr missing usage text:\n%s", errb.String())
	}
}

// TestList checks the list subcommand succeeds and names experiments.
func TestList(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"list"}, &out, &errb); code != 0 {
		t.Fatalf("run(list) exit code = %d, stderr:\n%s", code, errb.String())
	}
	for _, want := range []string{"fig1", "fig11", "ablate-tiered", "workloads:"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("list output missing %q", want)
		}
	}
}

// TestLintCommand checks the lint subcommand: clean examples exit 0
// with a per-program summary, a missing file exits 1.
func TestLintCommand(t *testing.T) {
	var out, errb bytes.Buffer
	code := run([]string{"lint",
		"../../examples/minijava/fib.mj",
		"../../examples/minijava/sieve.mj"}, &out, &errb)
	if code != 0 {
		t.Fatalf("lint examples exit code = %d, stderr:\n%s", code, errb.String())
	}
	if !strings.Contains(out.String(), "2 program(s), 0 finding(s)") {
		t.Errorf("lint summary missing from output:\n%s", out.String())
	}

	out.Reset()
	errb.Reset()
	if code := run([]string{"lint", "no-such-file.mj"}, &out, &errb); code != 1 {
		t.Errorf("lint missing-file exit code = %d, want 1 (stderr: %s)", code, errb.String())
	}
}

// TestExperimentParallelMatchesSerial runs one small experiment through
// the CLI serially and with 8 workers and requires byte-identical
// stdout.
func TestExperimentParallelMatchesSerial(t *testing.T) {
	var serial, par, errb bytes.Buffer
	if code := run([]string{"-quick", "-w", "hello", "-parallel", "1", "fig1"}, &serial, &errb); code != 0 {
		t.Fatalf("serial run failed (%d): %s", code, errb.String())
	}
	errb.Reset()
	if code := run([]string{"-quick", "-w", "hello", "-parallel", "8", "fig1"}, &par, &errb); code != 0 {
		t.Fatalf("parallel run failed (%d): %s", code, errb.String())
	}
	if serial.String() != par.String() {
		t.Errorf("parallel stdout differs from serial:\n--- serial ---\n%s\n--- parallel ---\n%s",
			serial.String(), par.String())
	}
}

// TestCachedirReuse runs the same experiment twice with a cache
// directory and requires identical stdout plus cache-hit progress on
// the second run.
func TestCachedirReuse(t *testing.T) {
	dir := t.TempDir()
	args := []string{"-quick", "-w", "hello", "-cachedir", dir, "fig1"}
	var first, second, errb1, errb2 bytes.Buffer
	if code := run(args, &first, &errb1); code != 0 {
		t.Fatalf("first run failed (%d): %s", code, errb1.String())
	}
	if code := run(args, &second, &errb2); code != 0 {
		t.Fatalf("second run failed (%d): %s", code, errb2.String())
	}
	if first.String() != second.String() {
		t.Errorf("cached stdout differs from fresh stdout")
	}
	if !strings.Contains(errb2.String(), "[cache]") {
		t.Errorf("second run shows no cache hits:\n%s", errb2.String())
	}
}

// TestChaosFlagValidation: a malformed -chaos spec is a usage error
// (exit 2) before any simulation starts.
func TestChaosFlagValidation(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-chaos", "panic=2", "fig1"}, &out, &errb); code != 2 {
		t.Fatalf("bad -chaos spec exit code = %d, want 2 (stderr: %s)", code, errb.String())
	}
	if !strings.Contains(errb.String(), "chaos") {
		t.Errorf("stderr = %q, want a chaos spec error", errb.String())
	}
	if out.Len() != 0 {
		t.Errorf("stdout not empty on usage error: %q", out.String())
	}
}

// TestResumeRequiresCachedir: -resume without -cachedir is a usage
// error — there is no journal to resume from.
func TestResumeRequiresCachedir(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-resume", "fig1"}, &out, &errb); code != 2 {
		t.Fatalf("-resume without -cachedir exit code = %d, want 2 (stderr: %s)", code, errb.String())
	}
	if !strings.Contains(errb.String(), "-cachedir") {
		t.Errorf("stderr = %q, want a -cachedir hint", errb.String())
	}
}

// TestChaosRetriesMatchClean: the CLI-level chaos contract — a run under
// injected faults with retries and a watchdog produces stdout
// byte-identical to a clean run (the CI chaos-smoke step in miniature).
func TestChaosRetriesMatchClean(t *testing.T) {
	var clean, chaotic, errb bytes.Buffer
	if code := run([]string{"-quick", "-w", "hello", "fig2"}, &clean, &errb); code != 0 {
		t.Fatalf("clean run failed (%d): %s", code, errb.String())
	}
	errb.Reset()
	if code := run([]string{"-quick", "-w", "hello",
		"-chaos", "seed=1,panic=0.3,hang=0.2,err=0.3,upto=1",
		"-retries", "3", "-celltimeout", "2s", "fig2"}, &chaotic, &errb); code != 0 {
		t.Fatalf("chaotic run failed (%d): %s", code, errb.String())
	}
	if clean.String() != chaotic.String() {
		t.Errorf("chaotic stdout differs from clean:\n--- clean ---\n%s\n--- chaotic ---\n%s",
			clean.String(), chaotic.String())
	}
}

// TestKeepGoingExitCode: a persistent targeted fault under -keepgoing
// renders the degraded result, appends the run report, and exits 3.
func TestKeepGoingExitCode(t *testing.T) {
	var out, errb bytes.Buffer
	code := run([]string{"-quick", "-w", "hello", "-keepgoing",
		"-chaos", "seed=1,panic=1,upto=99,cell=/interp", "fig2"}, &out, &errb)
	if code != 3 {
		t.Fatalf("keepgoing degraded run exit code = %d, want 3 (stderr: %s)", code, errb.String())
	}
	s := out.String()
	if !strings.Contains(s, "run report:") || !strings.Contains(s, "cause=panic") {
		t.Errorf("stdout missing the run report:\n%s", s)
	}

	// The report is deterministic: a second identical run produces
	// byte-identical stdout.
	var out2, errb2 bytes.Buffer
	if code := run([]string{"-quick", "-w", "hello", "-keepgoing",
		"-chaos", "seed=1,panic=1,upto=99,cell=/interp", "fig2"}, &out2, &errb2); code != 3 {
		t.Fatalf("second degraded run exit code = %d, want 3", code)
	}
	if out.String() != out2.String() {
		t.Errorf("degraded stdout not deterministic:\n--- first ---\n%s\n--- second ---\n%s",
			out.String(), out2.String())
	}
}

// TestResumeFlagFlow: interrupt a cached run with a targeted persistent
// panic, then finish it with -resume and no chaos; the resumed stdout
// must equal an uninterrupted run's.
func TestResumeFlagFlow(t *testing.T) {
	dir := t.TempDir()
	var ref, errb bytes.Buffer
	if code := run([]string{"-quick", "-w", "hello", "fig2"}, &ref, &errb); code != 0 {
		t.Fatalf("reference run failed (%d): %s", code, errb.String())
	}

	var out1, errb1 bytes.Buffer
	code := run([]string{"-quick", "-w", "hello", "-parallel", "1", "-cachedir", dir,
		"-chaos", "seed=1,panic=1,upto=99,cell=/jit", "fig2"}, &out1, &errb1)
	if code != 1 {
		t.Fatalf("interrupted run exit code = %d, want 1 (stderr: %s)", code, errb1.String())
	}

	var out2, errb2 bytes.Buffer
	if code := run([]string{"-quick", "-w", "hello", "-parallel", "1",
		"-cachedir", dir, "-resume", "fig2"}, &out2, &errb2); code != 0 {
		t.Fatalf("resume run failed (%d): %s", code, errb2.String())
	}
	if out2.String() != ref.String() {
		t.Errorf("resumed stdout differs from uninterrupted:\n--- resumed ---\n%s\n--- reference ---\n%s",
			out2.String(), ref.String())
	}
	if !strings.Contains(errb2.String(), "[cache]") {
		t.Errorf("resume served nothing from the cache:\n%s", errb2.String())
	}
}

// TestLintRacesCommand: the seeded-race fixture is clean under plain
// lint but fails `jrs lint -races` with the exact race line, and the
// clean worker pool stays green even with the races pass on.
func TestLintRacesCommand(t *testing.T) {
	racy := "../../examples/minijava/racy.mj"
	var out, errb bytes.Buffer
	if code := run([]string{"lint", racy}, &out, &errb); code != 0 {
		t.Fatalf("plain lint of racy.mj exit code = %d, want 0 (stderr: %s)", code, errb.String())
	}

	out.Reset()
	errb.Reset()
	if code := run([]string{"-races", "lint", racy}, &out, &errb); code != 1 {
		t.Fatalf("lint -races racy.mj exit code = %d, want 1 (stderr: %s)", code, errb.String())
	}
	if !strings.Contains(out.String(), "race on Shared.x: Racer.run()V @") {
		t.Errorf("lint -races output missing the Shared.x race witness:\n%s", out.String())
	}

	out.Reset()
	errb.Reset()
	if code := run([]string{"-races", "lint",
		"../../examples/minijava/deadlock.mj"}, &out, &errb); code != 1 {
		t.Fatalf("lint -races deadlock.mj exit code = %d, want 1 (stderr: %s)", code, errb.String())
	}
	if !strings.Contains(out.String(), "deadlock cycle: alloc:Main.main()V@") {
		t.Errorf("lint -races output missing the deadlock cycle:\n%s", out.String())
	}

	out.Reset()
	errb.Reset()
	if code := run([]string{"-races", "lint",
		"../../examples/minijava/workerpool.mj"}, &out, &errb); code != 0 {
		t.Fatalf("lint -races workerpool.mj exit code = %d, want 0 (stderr: %s)\n%s",
			code, errb.String(), out.String())
	}
}

// TestAnalyzeRacesCommand: -races extends the analyze census with the
// concurrency block.
func TestAnalyzeRacesCommand(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-races", "analyze",
		"../../examples/minijava/racy.mj"}, &out, &errb); code != 0 {
		t.Fatalf("analyze -races exit code = %d (stderr: %s)", code, errb.String())
	}
	for _, want := range []string{
		"concurrency: 2 spawned thread(s), 2 shared location(s), 1 race(s), 0 deadlock cycle(s)",
		"thread spawn@Main.main()V@",
		"race on Shared.x",
	} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("analyze -races output missing %q:\n%s", want, out.String())
		}
	}
}

// TestCheckRacesCommand: the differential runner passes on the
// multithreaded workload under a seeded schedule, and rejects modes
// without an execution engine.
func TestCheckRacesCommand(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-quick", "-checkraces", "-schedseed", "3",
		"run", "mtrt"}, &out, &errb); code != 0 {
		t.Fatalf("checkraces mtrt exit code = %d (stderr: %s)", code, errb.String())
	}
	if !strings.Contains(out.String(), "checkraces seed=3:") {
		t.Errorf("checkraces output missing its summary line:\n%s", out.String())
	}

	out.Reset()
	errb.Reset()
	if code := run([]string{"-quick", "-checkraces", "-mode", "opt", "run", "mtrt"}, &out, &errb); code != 2 {
		t.Fatalf("checkraces -mode opt exit code = %d, want 2 (stderr: %s)", code, errb.String())
	}
	if !strings.Contains(errb.String(), "-checkraces supports modes") {
		t.Errorf("stderr = %q, want the mode restriction", errb.String())
	}
}
