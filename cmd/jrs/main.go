// Command jrs runs the paper-reproduction experiments.
//
// Usage:
//
//	jrs list                 show available experiments
//	jrs <experiment>         run one experiment (fig1..fig11, table1..table3, ablate-*)
//	jrs all                  run every experiment
//	jrs run <workload>       execute one workload and print its output
//	jrs lint [file.mj ...]   run the static-analysis passes over every
//	                         workload (default) or the given MiniJava
//	                         sources; exits 1 if any finding is reported
//	jrs analyze [file.mj ...]  whole-program interprocedural analysis
//	                         report (call graph, devirtualization,
//	                         lock elision, purity) over every workload
//	                         (default) or the given MiniJava sources
//
// With -races, lint and analyze add the static concurrency analysis
// (internal/analysis/conc): may-happen-in-parallel race pairs and
// lock-order deadlock cycles count as findings. With -checkraces,
// `jrs run` attaches the dynamic vector-clock race detector and fails
// if it observes a race the static report does not subsume.
//
// With -checkelide, lint and analyze add the provable runtime-check
// census (internal/analysis/vrange: value-range and nullness analysis),
// and `jrs run` executes the workload twice — baseline, then with the
// proven bounds/null checks elided and a dynamic oracle re-validating
// every elided site — failing if outputs diverge or any elided check
// would have fired (the subsumption invariant).
//
// Flags:
//
//	-scale N      override every workload's input size (0 = default)
//	-quick        use each workload's reduced benchmark scale
//	-mode M       execution mode for `run` (interp, jit, aot, opt)
//	-w names      comma-separated workload subset for experiments
//	-parallel N   simulation workers (0 = GOMAXPROCS, 1 = serial)
//	-cachedir D   persist per-cell results under D and reuse them on re-runs
//	-codecache    share one in-process JIT translation cache across every
//	              engine the command builds (experiments and `run`); with
//	              -parallel, which cell pays each translation is
//	              scheduling-dependent (aggregate stats stay fixed)
//	-codecachedir D  back the shared translation cache with a persistent
//	              on-disk store under D (implies -codecache; corrupt or
//	              stale entries degrade to misses)
//	-celltimeout D watchdog deadline per cell attempt (0 = none); hung
//	              cells become retryable timeout failures
//	-retries N    re-attempts per cell after a retryable failure
//	              (panic, timeout, transient/injected fault)
//	-keepgoing    degraded mode: drain every cell, render what
//	              succeeded, print a run report; exit 3 on failures
//	-resume       trust the run journal under -cachedir: journaled
//	              cells are served from the cache, everything else
//	              re-simulates (continue an interrupted run)
//	-chaos SPEC   deterministic fault injection, e.g.
//	              seed=1,panic=0.1,hang=0.05,err=0.1,corrupt=0.02
//	              (also upto=K, cell=SUBSTR); the supervision test rig
//	-races        add the static race/deadlock analysis to lint and
//	              analyze reports (findings affect the exit code)
//	-checkraces   run the workload with the dynamic happens-before race
//	              detector attached and check every observed race
//	              against the static report (the subsumption invariant)
//	-checkelide   lint/analyze: add the provable runtime-check census;
//	              run: differential base-vs-elided execution with the
//	              dynamic check oracle attached (no elided check may fire)
//	-schedseed N  perturb scheduler slice lengths pseudo-randomly for
//	              `run` (0 = the fixed quantum; deterministic per seed)
//	-remote ADDR  submit the experiment grid to a jrsd coordinator at
//	              ADDR instead of running locally; the relayed output is
//	              byte-identical to the local run and the remote exit
//	              code (0/1/2/3) is propagated
//	-json         emit lint/analyze reports as JSON instead of text
//	-nobatch      deliver trace instructions one at a time (disable the
//	              batched transport; for debugging and A/B timing)
//	-cpuprofile F write a CPU profile to F
//	-memprofile F write a heap profile to F on exit
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"jrs/internal/core"
	"jrs/internal/harness"
	"jrs/internal/harness/chaos"
	"jrs/internal/harness/dist"
	"jrs/internal/jit/codecache"
	"jrs/internal/minijava"
	"jrs/internal/trace"
	"jrs/internal/workloads"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is the testable entry point: it parses args, executes the
// requested command writing reports to stdout and progress to stderr,
// and returns the process exit code.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("jrs", flag.ContinueOnError)
	fs.SetOutput(stderr)
	scale := fs.Int("scale", 0, "workload input scale (0 = workload default)")
	quick := fs.Bool("quick", false, "use reduced benchmark scales")
	mode := fs.String("mode", "jit", "execution mode for `run`: interp, jit, aot, opt")
	wsel := fs.String("w", "", "comma-separated workload subset")
	parallel := fs.Int("parallel", 0, "simulation workers (0 = GOMAXPROCS, 1 = serial)")
	cachedir := fs.String("cachedir", "", "directory for the persistent result cache (empty = no cache)")
	codecacheOn := fs.Bool("codecache", false, "share one in-process JIT translation cache across all engines")
	codecachedir := fs.String("codecachedir", "", "persistent on-disk store for the shared translation cache (implies -codecache)")
	celltimeout := fs.Duration("celltimeout", 0, "watchdog deadline per cell attempt (0 = none)")
	retries := fs.Int("retries", 0, "re-attempts per cell after a retryable failure")
	keepgoing := fs.Bool("keepgoing", false, "drain all cells despite failures; report and exit 3")
	resume := fs.Bool("resume", false, "resume an interrupted run from the -cachedir journal")
	chaosSpec := fs.String("chaos", "", "deterministic fault-injection spec (seed=N,panic=P,hang=P,err=P,corrupt=P,upto=K,cell=S)")
	jsonOut := fs.Bool("json", false, "emit lint/analyze reports as JSON")
	nobatch := fs.Bool("nobatch", false, "disable the batched trace transport (per-instruction delivery)")
	checkpipe := fs.Bool("checkpipe", false, "attach the pipeline invariant checker to every superscalar core (debug; slower)")
	races := fs.Bool("races", false, "add the static race/deadlock analysis to lint and analyze reports")
	checkraces := fs.Bool("checkraces", false, "attach the dynamic vector-clock race detector to `run` and check its findings against the static report (debug; slower)")
	checkelide := fs.Bool("checkelide", false, "lint/analyze: add the provable runtime-check census; run: differential base-vs-elided execution under the dynamic check oracle")
	schedseed := fs.Uint64("schedseed", 0, "seed pseudo-random scheduler slice lengths for `run` (0 = fixed quantum)")
	remote := fs.String("remote", "", "submit the experiment grid to a jrsd coordinator at this address instead of running locally")
	cpuprofile := fs.String("cpuprofile", "", "write a CPU profile to this file")
	memprofile := fs.String("memprofile", "", "write a heap profile to this file on exit")
	fs.Usage = func() { usage(fs, stderr) }
	if err := fs.Parse(args); err != nil {
		return 2
	}

	if fs.NArg() < 1 {
		fs.Usage()
		return 2
	}

	if *nobatch {
		trace.BatchSize = 1
	}
	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintf(stderr, "jrs: %v\n", err)
			return 1
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(stderr, "jrs: %v\n", err)
			return 1
		}
		defer pprof.StopCPUProfile()
	}
	if *memprofile != "" {
		defer func() {
			f, err := os.Create(*memprofile)
			if err != nil {
				fmt.Fprintf(stderr, "jrs: %v\n", err)
				return
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintf(stderr, "jrs: %v\n", err)
			}
		}()
	}

	opts := harness.Options{Scale: *scale, Quick: *quick, CheckPipe: *checkpipe, Races: *races, Checks: *checkelide}
	if *wsel != "" {
		for _, name := range strings.Split(*wsel, ",") {
			w, ok := workloads.ByName(strings.TrimSpace(name))
			if !ok {
				fmt.Fprintf(stderr, "jrs: unknown workload %q\n", name)
				return 1
			}
			opts.Workloads = append(opts.Workloads, w)
		}
	}

	if *remote != "" {
		return runRemote(*remote, fs.Arg(0), opts, stdout, stderr)
	}

	var cc *codecache.Cache
	if *codecacheOn || *codecachedir != "" {
		if *codecachedir != "" {
			var err error
			if cc, err = codecache.Open(*codecachedir); err != nil {
				fmt.Fprintf(stderr, "jrs: %v\n", err)
				return 1
			}
		} else {
			cc = codecache.NewMemory()
		}
		if *cachedir != "" {
			// Cached cell payloads bake in the phase split the cell saw
			// when it simulated; a warm translation cache changes that
			// split, so mixing the two caches can replay stale numbers.
			fmt.Fprintln(stderr, "jrs: warning: -codecache with -cachedir: cached cell results keep the translate/execute split of the run that produced them")
		}
		harness.SetCodeCache(cc)
		defer harness.SetCodeCache(nil)
		defer func() { fmt.Fprintf(stderr, "codecache: %s\n", cc.Stats()) }()
	}

	runner := &harness.Runner{
		Workers:     *parallel,
		CellTimeout: *celltimeout,
		Retries:     *retries,
		KeepGoing:   *keepgoing,
		BackoffBase: 100 * time.Millisecond,
		CodeCache:   cc,
	}
	if *chaosSpec != "" {
		spec, err := chaos.ParseSpec(*chaosSpec)
		if err != nil {
			fmt.Fprintf(stderr, "jrs: %v\n", err)
			return 2
		}
		runner.Chaos = chaos.New(spec)
	}
	if *cachedir != "" {
		cache, err := harness.OpenResultCache(*cachedir)
		if err != nil {
			fmt.Fprintf(stderr, "jrs: %v\n", err)
			return 1
		}
		runner.Cache = cache
		// The run journal lives next to the cache: every completed cell
		// is recorded so a later -resume continues where this run dies.
		journal, err := harness.OpenJournal(filepath.Join(*cachedir, harness.JournalName))
		if err != nil {
			fmt.Fprintf(stderr, "jrs: %v\n", err)
			return 1
		}
		defer journal.Close()
		runner.Journal = journal
	}
	if *resume {
		if *cachedir == "" {
			fmt.Fprintln(stderr, "jrs: -resume requires -cachedir (the journal lives there)")
			return 2
		}
		runner.Resume = true
	}
	runner.Progress = func(key harness.CellKey, cached bool) {
		tag := "sim"
		if cached {
			tag = "cache"
		}
		fmt.Fprintf(stderr, "  [%s] %s\n", tag, key)
	}

	cmd := fs.Arg(0)
	switch cmd {
	case "list":
		fmt.Fprintln(stdout, "experiments:")
		for _, e := range harness.Experiments() {
			fmt.Fprintf(stdout, "  %-17s %s\n", e.Name, e.Desc)
		}
		fmt.Fprintln(stdout, "\nworkloads:")
		for _, w := range workloads.All() {
			fmt.Fprintf(stdout, "  %-9s (default n=%d)  %s\n", w.Name, w.DefaultN, w.Desc)
		}

	case "all":
		out, err := harness.RunAllWith(opts, runner, func(e harness.Experiment) {
			fmt.Fprintf(stderr, "planning %s...\n", e.Name)
		})
		if err != nil {
			fmt.Fprintf(stderr, "jrs: %v\n", err)
			return 1
		}
		fmt.Fprintf(stderr, "done: %d cells simulated, %d from cache\n",
			runner.Simulated(), runner.CacheHits())
		fmt.Fprint(stdout, out)
		return reportExit(runner, *keepgoing, stdout)

	case "run":
		if fs.NArg() < 2 {
			fmt.Fprintln(stderr, "jrs: run requires a workload name")
			return 1
		}
		return runWorkload(fs.Arg(1), *mode, opts, *checkraces, *checkelide, *schedseed, stdout, stderr)

	case "lint":
		return lint(fs.Args()[1:], opts, *jsonOut, stdout, stderr)

	case "analyze":
		return analyze(fs.Args()[1:], opts, runner, *jsonOut, stdout, stderr)

	default:
		exp, ok := harness.Lookup(cmd)
		if !ok {
			fmt.Fprintf(stderr, "jrs: unknown experiment %q\n\nregistered experiments:\n", cmd)
			for _, name := range harness.Names() {
				fmt.Fprintf(stderr, "  %s\n", name)
			}
			return 2
		}
		fmt.Fprintf(stderr, "running %s...\n", exp.Name)
		r, err := exp.RunWith(opts, runner)
		if err != nil {
			fmt.Fprintf(stderr, "jrs: %v\n", err)
			return 1
		}
		fmt.Fprint(stdout, runner.SafeRender(r))
		return reportExit(runner, *keepgoing, stdout)
	}
	return 0
}

// runRemote submits an experiment grid to a jrsd coordinator and
// relays its merged output — byte-identical to running the same grid
// locally — propagating the remote exit code (0 healthy, 1 failed,
// 2 usage, 3 degraded keep-going run).
func runRemote(addr, cmd string, opts harness.Options, stdout, stderr io.Writer) int {
	switch cmd {
	case "", "list", "run", "lint", "analyze":
		fmt.Fprintln(stderr, "jrs: -remote runs experiment grids only (an experiment name, or \"all\")")
		return 2
	}
	grid := dist.GridSpec{Experiments: []string{cmd}, Opts: dist.SpecOf(opts)}
	out, err := dist.Submit(addr, grid, 0)
	if err != nil {
		fmt.Fprintf(stderr, "jrs: %v\n", err)
		return 1
	}
	if out.ErrMsg != "" {
		fmt.Fprintf(stderr, "jrs: %s\n", out.ErrMsg)
	}
	fmt.Fprint(stdout, out.Output)
	fmt.Fprint(stdout, out.Report)
	return out.ExitCode
}

// reportExit finishes a supervised experiment command: in -keepgoing
// mode it appends the deterministic run report to stdout and converts
// "some cells failed" into exit code 3 (degraded but rendered), keeping
// 0 for a fully healthy run.
func reportExit(runner *harness.Runner, keepgoing bool, stdout io.Writer) int {
	if !keepgoing {
		return 0
	}
	rep := runner.Report()
	fmt.Fprint(stdout, rep.Render())
	if rep.Failed > 0 {
		return 3
	}
	return 0
}

func runWorkload(name, modeName string, opts harness.Options, checkraces, checkelide bool, schedseed uint64, stdout, stderr io.Writer) int {
	w, ok := workloads.ByName(name)
	if !ok {
		fmt.Fprintf(stderr, "jrs: unknown workload %q\n", name)
		return 1
	}
	scale := opts.Scale
	if opts.Quick && scale == 0 {
		scale = w.BenchN
	}

	if checkraces {
		return checkRaces(w, scale, modeName, schedseed, stdout, stderr)
	}
	if checkelide {
		return checkElide(w, scale, modeName, stdout, stderr)
	}

	var e *core.Engine
	var err error
	cfg := core.Config{SchedSeed: schedseed}
	switch modeName {
	case "interp":
		e, err = harness.Run(w, scale, harness.ModeInterp, cfg)
	case "jit":
		e, err = harness.Run(w, scale, harness.ModeJIT, cfg)
	case "aot":
		e, err = harness.Run(w, scale, harness.ModeAOT, cfg)
	case "opt":
		e, _, err = harness.RunOracle(w, scale)
	default:
		fmt.Fprintf(stderr, "jrs: unknown mode %q\n", modeName)
		return 1
	}
	if err != nil {
		fmt.Fprintf(stderr, "jrs: %v\n", err)
		return 1
	}
	fmt.Fprint(stdout, e.VM.Out.String())
	exec, translate, load := e.PhaseInstrs()
	fmt.Fprintf(stdout, "\n[%s/%s] instructions: total=%d exec=%d translate=%d load=%d translations=%d footprint=%dKB\n",
		w.Name, modeName, e.TotalInstrs(), exec, translate, load,
		e.JIT.Translations, e.FootprintBytes()>>10)
	return 0
}

// checkRaces executes the workload with the dynamic vector-clock race
// detector attached (jrs run -checkraces), reports what it observed,
// and fails when a dynamic race escapes the static report.
func checkRaces(w workloads.Workload, scale int, modeName string, schedseed uint64, stdout, stderr io.Writer) int {
	var mode harness.Mode
	switch modeName {
	case "interp":
		mode = harness.ModeInterp
	case "jit":
		mode = harness.ModeJIT
	case "aot":
		mode = harness.ModeAOT
	default:
		fmt.Fprintf(stderr, "jrs: -checkraces supports modes interp, jit, aot (got %q)\n", modeName)
		return 2 // usage error, like any bad flag combination
	}
	rc, err := harness.CheckRacesWorkload(context.Background(), w, scale, mode, schedseed)
	if err != nil {
		fmt.Fprintf(stderr, "jrs: %v\n", err)
		return 1
	}
	fmt.Fprintf(stdout, "[%s/%s] checkraces seed=%d: %d static race(s), %d deadlock cycle(s); %d dynamic race(s)\n",
		rc.Workload, rc.Mode, rc.Seed, len(rc.Static.Races), len(rc.Static.Deadlocks), len(rc.Dynamic))
	for _, d := range rc.Dynamic {
		fmt.Fprintf(stdout, "  %s\n", d)
	}
	if rc.Deadlocked {
		fmt.Fprintln(stdout, "  run deadlocked (no runnable threads)")
	}
	if err := rc.Err(); err != nil {
		fmt.Fprintf(stderr, "jrs: %v\n", err)
		return 1
	}
	return 0
}

// checkElide executes the workload twice under the mode — baseline,
// then with proven checks elided and the dynamic oracle attached (jrs
// run -checkelide) — and fails when outputs diverge or any elided check
// would have fired.
func checkElide(w workloads.Workload, scale int, modeName string, stdout, stderr io.Writer) int {
	var mode harness.Mode
	switch modeName {
	case "interp":
		mode = harness.ModeInterp
	case "jit":
		mode = harness.ModeJIT
	case "aot":
		mode = harness.ModeAOT
	default:
		fmt.Fprintf(stderr, "jrs: -checkelide supports modes interp, jit, aot (got %q)\n", modeName)
		return 2 // usage error, like any bad flag combination
	}
	ec, err := harness.CheckElideWorkload(context.Background(), w, scale, mode)
	if err != nil {
		fmt.Fprintf(stderr, "jrs: %v\n", err)
		return 1
	}
	c := ec.Census
	fmt.Fprintf(stdout, "[%s/%s] checkelide: %d/%d bounds site(s) proven, %d/%d null site(s) proven; %d check(s) run, %d elided, %d oracle validation(s)\n",
		ec.Workload, ec.Mode, c.BoundsProven, c.BoundsSites, c.NullProven, c.NullSites,
		ec.Checked, ec.Elided, ec.Runtime)
	for _, v := range ec.Violated {
		fmt.Fprintf(stdout, "  VIOLATION %s\n", v)
	}
	if err := ec.Err(); err != nil {
		fmt.Fprintf(stderr, "jrs: %v\n", err)
		return 1
	}
	return 0
}

// compilePrograms loads the named MiniJava sources, or every workload
// when no files are given.
func compilePrograms(files []string, opts harness.Options, stderr io.Writer) ([]harness.LintProgram, bool) {
	if len(files) == 0 {
		return harness.WorkloadPrograms(opts), true
	}
	var progs []harness.LintProgram
	for _, f := range files {
		src, err := os.ReadFile(f)
		if err != nil {
			fmt.Fprintf(stderr, "jrs: %v\n", err)
			return nil, false
		}
		classes, err := minijava.Compile(f, string(src))
		if err != nil {
			fmt.Fprintf(stderr, "jrs: %v\n", err)
			return nil, false
		}
		progs = append(progs, harness.LintProgram{Name: f, Classes: classes})
	}
	return progs, true
}

// lint runs the analysis pass suite over the named MiniJava sources, or
// over every workload when no files are given, and prints the
// deterministic diagnostic report (text or JSON). Exit code 1 signals
// findings.
func lint(files []string, opts harness.Options, jsonOut bool, stdout, stderr io.Writer) int {
	progs, ok := compilePrograms(files, opts, stderr)
	if !ok {
		return 1
	}
	report, err := harness.BuildLintReportOpts(progs, opts.Races, opts.Checks)
	if err != nil {
		fmt.Fprintf(stderr, "jrs: %v\n", err)
		return 1
	}
	out := report.Render()
	if jsonOut {
		if out, err = report.JSON(); err != nil {
			fmt.Fprintf(stderr, "jrs: %v\n", err)
			return 1
		}
	}
	fmt.Fprint(stdout, out)
	if report.Findings > 0 {
		return 1
	}
	return 0
}

// analyze prints the whole-program interprocedural analysis report over
// the named MiniJava sources, or every workload when no files are given
// (the workload path runs on the -parallel worker pool).
func analyze(files []string, opts harness.Options, runner *harness.Runner, jsonOut bool, stdout, stderr io.Writer) int {
	var res *harness.AnalyzeResult
	var err error
	if len(files) == 0 {
		res, err = harness.AnalyzeWith(opts, runner)
	} else {
		var progs []harness.LintProgram
		var ok bool
		if progs, ok = compilePrograms(files, opts, stderr); !ok {
			return 1
		}
		res, err = harness.AnalyzePrograms(progs, opts.Races, opts.Checks)
	}
	if err != nil {
		fmt.Fprintf(stderr, "jrs: %v\n", err)
		return 1
	}
	out := res.Render()
	if jsonOut {
		if out, err = res.JSON(); err != nil {
			fmt.Fprintf(stderr, "jrs: %v\n", err)
			return 1
		}
	}
	fmt.Fprint(stdout, out)
	return 0
}

func usage(fs *flag.FlagSet, stderr io.Writer) {
	fmt.Fprintf(stderr, `jrs — architectural studies of Java runtime systems (HPCA 2000 reproduction)

usage:
  jrs [flags] list
  jrs [flags] <experiment>   e.g. fig1, table2, ablate-install
  jrs [flags] all
  jrs [flags] run <workload>
  jrs [flags] lint [file.mj ...]
  jrs [flags] analyze [file.mj ...]

flags:
`)
	fs.PrintDefaults()
}
