// Command jrs runs the paper-reproduction experiments.
//
// Usage:
//
//	jrs list                 show available experiments
//	jrs <experiment>         run one experiment (fig1..fig11, table1..table3, ablate-*)
//	jrs all                  run every experiment
//	jrs run <workload>       execute one workload and print its output
//
// Flags:
//
//	-scale N    override every workload's input size (0 = default)
//	-quick      use each workload's reduced benchmark scale
//	-mode M     execution mode for `run` (interp, jit, aot, opt)
//	-w names    comma-separated workload subset for experiments
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"jrs/internal/core"
	"jrs/internal/harness"
	"jrs/internal/workloads"
)

func main() {
	scale := flag.Int("scale", 0, "workload input scale (0 = workload default)")
	quick := flag.Bool("quick", false, "use reduced benchmark scales")
	mode := flag.String("mode", "jit", "execution mode for `run`: interp, jit, aot, opt")
	wsel := flag.String("w", "", "comma-separated workload subset")
	flag.Usage = usage
	flag.Parse()

	if flag.NArg() < 1 {
		usage()
		os.Exit(2)
	}

	opts := harness.Options{Scale: *scale, Quick: *quick}
	if *wsel != "" {
		for _, name := range strings.Split(*wsel, ",") {
			w, ok := workloads.ByName(strings.TrimSpace(name))
			if !ok {
				fatalf("unknown workload %q", name)
			}
			opts.Workloads = append(opts.Workloads, w)
		}
	}

	cmd := flag.Arg(0)
	switch cmd {
	case "list":
		fmt.Println("experiments:")
		for _, e := range harness.Experiments() {
			fmt.Printf("  %-17s %s\n", e.Name, e.Desc)
		}
		fmt.Println("\nworkloads:")
		for _, w := range workloads.All() {
			fmt.Printf("  %-9s (default n=%d)  %s\n", w.Name, w.DefaultN, w.Desc)
		}

	case "all":
		out, err := harness.RunAll(opts, func(name string) {
			fmt.Fprintf(os.Stderr, "running %s...\n", name)
		})
		if err != nil {
			fatalf("%v", err)
		}
		fmt.Print(out)

	case "run":
		if flag.NArg() < 2 {
			fatalf("run requires a workload name")
		}
		runWorkload(flag.Arg(1), *mode, opts)

	default:
		exp, ok := harness.Lookup(cmd)
		if !ok {
			fatalf("unknown experiment %q (try `jrs list`)", cmd)
		}
		fmt.Fprintf(os.Stderr, "running %s...\n", exp.Name)
		r, err := exp.Run(opts)
		if err != nil {
			fatalf("%v", err)
		}
		fmt.Print(r.Render())
	}
}

func runWorkload(name, modeName string, opts harness.Options) {
	w, ok := workloads.ByName(name)
	if !ok {
		fatalf("unknown workload %q", name)
	}
	scale := opts.Scale
	if opts.Quick && scale == 0 {
		scale = w.BenchN
	}

	var e *core.Engine
	var err error
	switch modeName {
	case "interp":
		e, err = harness.Run(w, scale, harness.ModeInterp, core.Config{})
	case "jit":
		e, err = harness.Run(w, scale, harness.ModeJIT, core.Config{})
	case "aot":
		e, err = harness.Run(w, scale, harness.ModeAOT, core.Config{})
	case "opt":
		e, _, err = harness.RunOracle(w, scale)
	default:
		fatalf("unknown mode %q", modeName)
	}
	if err != nil {
		fatalf("%v", err)
	}
	fmt.Print(e.VM.Out.String())
	exec, translate, load := e.PhaseInstrs()
	fmt.Printf("\n[%s/%s] instructions: total=%d exec=%d translate=%d load=%d translations=%d footprint=%dKB\n",
		w.Name, modeName, e.TotalInstrs(), exec, translate, load,
		e.JIT.Translations, e.FootprintBytes()>>10)
}

func usage() {
	fmt.Fprintf(os.Stderr, `jrs — architectural studies of Java runtime systems (HPCA 2000 reproduction)

usage:
  jrs [flags] list
  jrs [flags] <experiment>   e.g. fig1, table2, ablate-install
  jrs [flags] all
  jrs [flags] run <workload>

flags:
`)
	flag.PrintDefaults()
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "jrs: "+format+"\n", args...)
	os.Exit(1)
}
