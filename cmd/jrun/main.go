// Command jrun executes a compiled class bundle (produced by cmd/mjc)
// under any of the runtime configurations the library supports.
//
// Usage:
//
//	jrun [-mode interp|jit|mixed] [-threshold N] [-locks thin|fat|onebit]
//	     [-stats] prog.jrsc
package main

import (
	"flag"
	"fmt"
	"os"

	"jrs/internal/classfile"
	"jrs/internal/core"
	"jrs/internal/emit"
	"jrs/internal/monitor"
)

func main() {
	mode := flag.String("mode", "jit", "execution mode: interp, jit, mixed")
	threshold := flag.Uint64("threshold", 10, "invocation threshold for -mode mixed")
	locks := flag.String("locks", "thin", "synchronization: thin, fat, onebit")
	showStats := flag.Bool("stats", false, "print runtime statistics after execution")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: jrun [flags] prog.jrsc\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() != 1 {
		flag.Usage()
		os.Exit(2)
	}

	f, err := os.Open(flag.Arg(0))
	if err != nil {
		fatalf("%v", err)
	}
	classes, err := classfile.Read(f)
	f.Close()
	if err != nil {
		fatalf("%v", err)
	}

	var policy core.Policy
	switch *mode {
	case "interp":
		policy = core.InterpretOnly{}
	case "jit":
		policy = core.CompileFirst{}
	case "mixed":
		policy = core.Threshold{N: *threshold}
	default:
		fatalf("unknown mode %q", *mode)
	}

	var monitors func(*emit.Emitter) monitor.Manager
	switch *locks {
	case "thin":
		monitors = func(em *emit.Emitter) monitor.Manager { return monitor.NewThin(em) }
	case "fat":
		monitors = func(em *emit.Emitter) monitor.Manager { return monitor.NewFat(em) }
	case "onebit":
		monitors = func(em *emit.Emitter) monitor.Manager { return monitor.NewOneBit(em) }
	default:
		fatalf("unknown lock implementation %q", *locks)
	}

	e := core.New(core.Config{Policy: policy, Monitors: monitors})
	if err := e.VM.Load(classes); err != nil {
		fatalf("%v", err)
	}
	main, err := e.VM.LookupMain()
	if err != nil {
		fatalf("%v", err)
	}
	if err := e.Run(main); err != nil {
		fatalf("%v", err)
	}
	os.Stdout.WriteString(e.VM.Out.String())

	if *showStats {
		exec, translate, load := e.PhaseInstrs()
		sync := e.VM.Monitors.Stats()
		fmt.Fprintf(os.Stderr,
			"\njrun: mode=%s instrs=%d (exec=%d translate=%d load=%d) "+
				"translations=%d footprint=%dKB sync-ops=%d\n",
			*mode, e.TotalInstrs(), exec, translate, load,
			e.JIT.Translations, e.FootprintBytes()>>10, sync.Ops())
	}
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "jrun: "+format+"\n", args...)
	os.Exit(1)
}
