// Command mjc compiles MiniJava source files into a binary class bundle
// executable with cmd/jrun.
//
// Usage:
//
//	mjc -o prog.jrsc main.mj [more.mj ...]
package main

import (
	"flag"
	"fmt"
	"os"

	"jrs/internal/classfile"
	"jrs/internal/minijava"
)

func main() {
	out := flag.String("o", "out.jrsc", "output bundle path")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: mjc [-o out.jrsc] file.mj [file.mj ...]\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() == 0 {
		flag.Usage()
		os.Exit(2)
	}

	sources := make(map[string]string)
	for _, path := range flag.Args() {
		src, err := os.ReadFile(path)
		if err != nil {
			fatalf("%v", err)
		}
		sources[path] = string(src)
	}
	classes, err := minijava.CompileSources(sources)
	if err != nil {
		fatalf("%v", err)
	}

	f, err := os.Create(*out)
	if err != nil {
		fatalf("%v", err)
	}
	defer f.Close()
	if err := classfile.Write(f, classes); err != nil {
		fatalf("write %s: %v", *out, err)
	}
	methods := 0
	for _, c := range classes {
		methods += len(c.Methods)
	}
	fmt.Fprintf(os.Stderr, "mjc: wrote %s (%d classes, %d methods)\n",
		*out, len(classes), methods)
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "mjc: "+format+"\n", args...)
	os.Exit(1)
}
